"""Event-scheduler backends: calendar-queue ↔ heap equivalence and units.

The calendar queue (``scheduler="calendar"``) must replay the exact
``(time, seq)`` total order of the reference binary heap — the backend is
a pure performance choice, never a semantics one.  Pinned here:

* every golden-corpus cell digests identically under the calendar backend
  (the pinned digests in ``test_golden_corpus`` were captured on the heap),
* ``run()`` and one-event-at-a-time ``step()`` produce byte-identical
  executions under both backends (n=64, jittered latency, crypto compute —
  the exact shape the calendar queue is tuned for),
* an event budget that cuts a run mid-broadcast (mid sbatch chain) resumes
  without perturbing the execution,
* adversarial timestamp distributions (all-same-instant, exponential
  spread, far-future/infinite timers) pop in reference heap order straight
  from the :class:`CalendarQueue`, across width adaptation and rebuilds,
* ``run_until_idle`` raises :class:`BudgetExhausted` on a wedged run
  instead of silently returning mid-execution,
* cancelled-timer bookkeeping drains to empty across crash/recovery chaos,
  and ``event_counts()`` is backend-invariant (no sbatch double-count).
"""

from __future__ import annotations

import itertools
import math
import random

import pytest

from repro.net.faults import CrashSchedule, FaultPlan
from repro.net.latency import ConstantLatency, GeoLatency
from repro.net.topology import four_global_datacenters
from repro.protocols.base import Protocol, ProtocolParams
from repro.protocols.registry import create_replicas
from repro.runtime.scheduler import (
    _FAR_TIME,
    CalendarQueue,
    HeapScheduler,
    SCHEDULERS,
    build_scheduler,
)
from repro.runtime.simulator import BudgetExhausted, NetworkConfig, Simulation

from test_golden_corpus import (
    COMPUTES,
    GOLDEN_DIGESTS,
    PROTOCOLS,
    TRANSPORTS,
    _execution_digest,
)

try:
    import numpy as _np
except Exception:  # pragma: no cover - numpy is part of the baked toolchain
    _np = None

BACKENDS = ("heap", "calendar")


# --------------------------------------------------------------------- #
# Golden corpus byte-identity
# --------------------------------------------------------------------- #


class TestGoldenCorpusBackendInvariance:
    """All 24 corpus cells must digest identically under the calendar queue.

    The pinned digests were captured on the heap backend, so matching them
    *is* the heap↔calendar byte-identity check — one corpus run, not two.
    """

    @pytest.mark.parametrize("compute", COMPUTES)
    @pytest.mark.parametrize("transport", TRANSPORTS)
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_calendar_matches_pinned_heap_digest(self, protocol, transport,
                                                 compute):
        assert _execution_digest(protocol, transport, compute,
                                 scheduler="calendar") == \
            GOLDEN_DIGESTS[(protocol, transport, compute)], (
                f"{protocol}/{transport}/{compute} diverged under the "
                f"calendar scheduler — the backend must never change an "
                f"execution"
            )


# --------------------------------------------------------------------- #
# run() vs step() and budget-resume, both backends
# --------------------------------------------------------------------- #


def _jittered_simulation(n: int, compute: str, scheduler: str,
                         seed: int = 11) -> Simulation:
    params = ProtocolParams(n=n, f=(n - 1) // 3, p=1, rank_delay=0.2)
    protocols = create_replicas("banyan", params)
    topology = four_global_datacenters(n)
    network = NetworkConfig(latency=GeoLatency(topology, jitter=0.05),
                            faults=FaultPlan.none(), seed=seed,
                            compute=compute, scheduler=scheduler)
    return Simulation(protocols, network)


def _execution_fingerprint(simulation: Simulation) -> dict:
    return {
        "commits": [
            (record.replica_id, record.block.round, record.block.id,
             record.commit_time, record.finalization_kind)
            for replica_id in simulation.replica_ids
            for record in simulation.commits_for(replica_id)
        ],
        "sent": simulation.messages_sent,
        "delivered": simulation.messages_delivered,
        "dropped": simulation.messages_dropped,
        "compute": simulation.compute_stats(),
        "events": simulation.event_counts(),
    }


def _drive_by_steps(simulation: Simulation, until: float) -> None:
    """Replay ``run(until=...)`` via budget-1 steps, horizon edge included.

    ``run()`` dispatches while the queue head is inside the horizon — and
    when that head is a *cancelled* timer, the next real event goes through
    without re-checking ``until``.  Stepping whenever the raw head (which
    may be a cancelled timer) is inside the horizon reproduces exactly
    that rule.
    """
    simulation.start()
    while True:
        head = simulation._scheduler.peek()
        if head is None or head[0] > until:
            break
        if not simulation.step():
            break
    simulation.now = max(simulation.now, until)


class TestRunVsStep:
    """Budget-1 stepping must be indistinguishable from the batched run.

    n=64 with jittered latency and crypto compute: broadcasts spill as
    vectorized calendar segments, compute deferrals requeue mid-bucket,
    and every step re-enters the compiled loop — the hardest shape for
    the scheduler seam to keep byte-identical.
    """

    HORIZON = 1.2

    @pytest.mark.parametrize("scheduler", BACKENDS)
    def test_step_matches_run(self, scheduler):
        batched = _jittered_simulation(64, "crypto", scheduler)
        batched.run(until=self.HORIZON)

        stepped = _jittered_simulation(64, "crypto", scheduler)
        _drive_by_steps(stepped, self.HORIZON)

        fingerprint = _execution_fingerprint(batched)
        assert fingerprint == _execution_fingerprint(stepped)
        assert fingerprint["commits"], "vacuous cell: nothing committed"
        # The cell genuinely exercised the spill pipeline.
        assert fingerprint["events"]["sbatch"] > 0

    def test_backends_agree(self):
        heap = _jittered_simulation(64, "crypto", "heap")
        heap.run(until=self.HORIZON)
        calendar = _jittered_simulation(64, "crypto", "calendar")
        calendar.run(until=self.HORIZON)
        assert _execution_fingerprint(heap) == _execution_fingerprint(calendar)


class TestBudgetResume:
    """An event budget that stops a run mid sbatch chain must resume clean.

    A 13-event budget lands inside a 16-member broadcast over and over;
    the cut member chain is re-queued under its original key, so chunked
    runs must replay the uncut execution byte for byte.
    """

    HORIZON = 2.5

    @pytest.mark.parametrize("scheduler", BACKENDS)
    def test_chunked_run_matches_uncut(self, scheduler):
        uncut = _jittered_simulation(16, "zero", scheduler)
        # The private driver returns the processed-event count, which sizes
        # the chunked replay below without guessing.
        total = uncut._run_dispatch(self.HORIZON, None)
        assert total > 13
        assert uncut.event_counts()["sbatch_members"] > 13

        chunked = _jittered_simulation(16, "zero", scheduler)
        for _ in range(total // 13 + 1):
            chunked.run(until=self.HORIZON, max_events=13)
        assert _execution_fingerprint(uncut) == \
            _execution_fingerprint(chunked)
        assert _execution_fingerprint(uncut)["commits"]


# --------------------------------------------------------------------- #
# run_until_idle budget exhaustion
# --------------------------------------------------------------------- #


@pytest.fixture
def ping_pong():
    """Two replicas bouncing a message forever: never idle."""

    class PingPong(Protocol):
        name = "ping-pong"

        def on_start(self, ctx):
            if self.replica_id == 0:
                ctx.send(1, _Note())

        def on_message(self, ctx, sender, message):
            ctx.send(sender, _Note())

        def on_timer(self, ctx, timer):
            pass

    params = ProtocolParams(n=2, f=0, p=0)
    protocols = {i: PingPong(i, params) for i in range(2)}
    return Simulation(protocols, NetworkConfig(latency=ConstantLatency(0.01)))


class _Note:
    wire_size = 8


class TestRunUntilIdleBudget:
    def test_wedged_run_raises_budget_exhausted(self, ping_pong):
        with pytest.raises(BudgetExhausted) as excinfo:
            ping_pong.run_until_idle(max_events=50)
        assert excinfo.value.processed == 50
        assert excinfo.value.remaining >= 1
        assert "50-event budget" in str(excinfo.value)

    def test_draining_run_returns_processed_count(self):
        params = ProtocolParams(n=3, f=0, p=0)

        class OneShot(Protocol):
            name = "one-shot"

            def on_start(self, ctx):
                if self.replica_id == 0:
                    ctx.broadcast(_Note())

            def on_message(self, ctx, sender, message):
                pass

            def on_timer(self, ctx, timer):
                pass

        sim = Simulation({i: OneShot(i, params) for i in range(3)},
                         NetworkConfig(latency=ConstantLatency(0.01)))
        processed = sim.run_until_idle()
        assert processed > 0
        # Idle really means idle: a second call has nothing left to do.
        assert sim.run_until_idle() == 0

    def test_budget_exhausted_is_a_runtime_error(self, ping_pong):
        with pytest.raises(RuntimeError):
            ping_pong.run_until_idle(max_events=10)


# --------------------------------------------------------------------- #
# Cancelled-timer bookkeeping and event-count consistency
# --------------------------------------------------------------------- #


class _TimerChurn(Protocol):
    """Arms timer pairs each round, cancels one, and gossips — for ROUNDS."""

    ROUNDS = 12
    name = "timer-churn"

    def __init__(self, replica_id, params):
        super().__init__(replica_id, params)
        self.rounds = 0
        self.fired = []

    def on_start(self, ctx):
        self._arm(ctx)

    def _arm(self, ctx):
        doomed = ctx.set_timer(0.05, "doomed")
        ctx.set_timer(0.1, "tick")
        ctx.cancel_timer(doomed)

    def on_message(self, ctx, sender, message):
        self.fired.append((sender, ctx.now()))

    def on_timer(self, ctx, timer):
        self.rounds += 1
        ctx.broadcast(_Note())
        if self.rounds < self.ROUNDS:
            self._arm(ctx)


def _churn_simulation(scheduler: str) -> Simulation:
    n = 8
    params = ProtocolParams(n=n, f=2, p=1)
    protocols = {i: _TimerChurn(i, params) for i in range(n)}
    topology = four_global_datacenters(n)
    # Crash/recovery chaos: one permanent crash, one crash-and-recover —
    # timers armed before a crash still pop (and must still clean up).
    faults = FaultPlan(crash_schedule=CrashSchedule(
        crash_times={1: 0.25, 2: 0.55}, recover_times={2: 0.95}))
    network = NetworkConfig(latency=GeoLatency(topology, jitter=0.05),
                            faults=faults, seed=5, scheduler=scheduler)
    return Simulation(protocols, network)


class TestTimerBookkeepingAcrossChaos:
    @pytest.mark.parametrize("scheduler", BACKENDS)
    def test_cancelled_set_drains_to_empty(self, scheduler):
        sim = _churn_simulation(scheduler)
        sim.run_until_idle(max_events=1_000_000)
        assert sim._cancelled_timers == set()
        assert sim._pending_timers == set()
        # The chaos was not vacuous: survivors churned through all rounds.
        assert sim.protocol(0).rounds == _TimerChurn.ROUNDS
        assert all(p.fired for i, p in sim._protocols.items() if i not in (1, 2))

    def test_event_counts_are_backend_invariant(self):
        heap = _churn_simulation("heap")
        heap.run_until_idle(max_events=1_000_000)
        calendar = _churn_simulation("calendar")
        calendar.run_until_idle(max_events=1_000_000)
        heap_counts = heap.event_counts()
        assert heap_counts == calendar.event_counts()
        # No sbatch double-count: each scheduled delivery is tallied exactly
        # once (as message, mbatch member, or sbatch member), so the total
        # brackets between deliveries made and sends attempted.
        scheduled = (heap_counts["message"] + heap_counts["mbatch_members"]
                     + heap_counts["sbatch_members"])
        assert heap_counts["sbatch_members"] > 0
        assert heap.messages_delivered <= scheduled <= heap.messages_sent
        assert heap.messages_delivered == calendar.messages_delivered
        assert heap.messages_dropped == calendar.messages_dropped


# --------------------------------------------------------------------- #
# CalendarQueue unit behaviour: adversarial timestamp distributions
# --------------------------------------------------------------------- #


def _drain(queue) -> list:
    out = []
    while True:
        head = queue.peek()
        if head is None:
            assert len(queue) == 0
            break
        event = queue.pop()
        assert event == head or event[0] == head[0]
        out.append(event)
    return out


def _reference_drain(events) -> list:
    reference = HeapScheduler()
    for event in events:
        reference.push(event)
    out = []
    while reference.peek() is not None:
        out.append(reference.pop())
    return out


class TestCalendarQueueAdversarial:
    def _make(self):
        seq = itertools.count()
        return CalendarQueue(seq), seq

    def test_all_same_instant(self):
        queue, seq = self._make()
        events = [(1.5, next(seq), "timer", i, None) for i in range(500)]
        for event in events:
            queue.push(event)
        assert _drain(queue) == events

    def test_exponential_spread_pops_sorted(self):
        queue, seq = self._make()
        rng = random.Random(42)
        events = []
        for _ in range(2_000):
            # Times spanning nine orders of magnitude: buckets start far
            # too narrow, so the adaptive width must re-derive itself.
            t = rng.expovariate(1.0) * 10.0 ** rng.randint(-3, 5)
            events.append((t, next(seq), "timer", 0, None))
        shuffled = list(events)
        rng.shuffle(shuffled)
        for event in shuffled:
            queue.push(event)
        assert _drain(queue) == _reference_drain(events)

    def test_widely_spaced_times_trigger_width_adaptation(self):
        queue, seq = self._make()
        # Seed a narrow width, then push events one simulated second apart:
        # every advance scans ~1000 empty slots, so the occupancy counters
        # must double the width (at least once) without reordering a pop.
        events = [(0.001 * i, next(seq), "timer", 0, None) for i in range(12)]
        events += [(1.0 * i, next(seq), "timer", 0, None)
                   for i in range(1, 700)]
        for event in events:
            queue.push(event)
        assert _drain(queue) == _reference_drain(events)
        assert queue.stats()["rebuilds"] >= 1

    def test_far_future_and_infinite_timers(self):
        queue, seq = self._make()
        events = [
            (0.5, next(seq), "timer", 0, None),
            (_FAR_TIME * 2, next(seq), "timer", 1, None),
            (math.inf, next(seq), "timer", 2, None),
            (1.5, next(seq), "timer", 3, None),
            (_FAR_TIME, next(seq), "timer", 4, None),
            (2.5, next(seq), "timer", 5, None),
        ]
        for event in events:
            queue.push(event)
        assert _drain(queue) == _reference_drain(events)

    def test_push_into_open_bucket_loses_exact_time_ties(self):
        queue, seq = self._make()
        resident = (1.0, next(seq), "timer", 0, "resident")
        queue.push(resident)
        queue.push((5.0, next(seq), "timer", 0, "later"))
        assert queue.peek() == resident
        # Scheduled *after* the resident materialized at the same instant:
        # the resident must still pop first (heap (time, seq) order).
        late = (1.0, next(seq), "timer", 0, "late-arrival")
        queue.push(late)
        assert queue.pop() == resident
        assert queue.pop() == late

    def test_requeue_front_restores_the_head(self):
        queue, seq = self._make()
        events = [(float(i), next(seq), "timer", 0, None) for i in range(5)]
        for event in events:
            queue.push(event)
        head = queue.pop()
        queue.requeue_front(head)
        assert queue.peek() == head
        assert _drain(queue) == events

    def test_pop_empty_raises(self):
        queue, _ = self._make()
        with pytest.raises(IndexError):
            queue.pop()
        assert queue.peek() is None


@pytest.mark.skipif(_np is None, reason="spill path requires numpy")
class TestCalendarQueueSpill:
    """Vectorized broadcast spill vs the heap's chained-sbatch order.

    The heap backend gives a spilled broadcast ONE sequence number; its
    members order by fractional seqs ``base + i/count`` (i=0 keeps the
    integer base).  The reference drain is built from exactly those keys.
    """

    def _spill_reference(self, times, targets, base, payload):
        count = len(times)
        return [
            (float(times[i]), base + i / count if i else base, "message",
             int(targets[i]), payload)
            for i in range(count)
        ]

    @staticmethod
    def _normalize(event):
        # Materialized members pop with a placeholder seq (-1): the true
        # order is the pop sequence itself, so compare time/kind/target/
        # payload and leave the seq to the order assertion.
        time_, _seq, kind, target, payload = event
        return (time_, kind, target, payload)

    def test_spill_replays_chained_heap_order(self):
        seq = itertools.count()
        queue = CalendarQueue(seq)
        rng = random.Random(9)

        expected = []
        payload_a = (3, "msg-a")
        times_a = _np.sort(_np.array([1.0 + rng.random() for _ in range(64)]))
        targets_a = _np.arange(64, dtype=_np.int64)
        queue.spill(times_a, targets_a, 3, "msg-a", payload_a)
        expected += self._spill_reference(times_a, targets_a, 0, payload_a)

        # A standard push landing mid-broadcast, scheduled after the spill.
        tie = (float(times_a[10]), next(seq), "timer", 7, "tied-timer")
        queue.push(tie)
        expected.append(tie)

        # Second broadcast overlapping the first (its own single seq draw).
        payload_b = (5, "msg-b")
        times_b = _np.sort(_np.array([1.2 + rng.random() for _ in range(64)]))
        targets_b = _np.arange(64, dtype=_np.int64)
        queue.spill(times_b, targets_b, 5, "msg-b", payload_b)
        expected += self._spill_reference(times_b, targets_b, 2, payload_b)

        drained = _drain(queue)
        reference = _reference_drain(expected)
        assert [self._normalize(e) for e in drained] == \
            [self._normalize(e) for e in reference]

    def test_far_future_tail_spills_to_overflow(self):
        seq = itertools.count()
        queue = CalendarQueue(seq)
        times = _np.array([1.0, 2.0, _FAR_TIME + 1.0, math.inf])
        targets = _np.arange(4, dtype=_np.int64)
        payload = (0, "msg")
        queue.spill(times, targets, 0, "msg", payload)
        expected = self._spill_reference(times, targets, 0, payload)
        drained = _drain(queue)
        assert [self._normalize(e) for e in drained] == \
            [self._normalize(e) for e in expected]


# --------------------------------------------------------------------- #
# Backend selection plumbing
# --------------------------------------------------------------------- #


class TestBackendSelection:
    def test_auto_picks_calendar_only_for_large_jittered_runs(self):
        seq = itertools.count()
        assert build_scheduler("heap", seq).name == "heap"
        assert build_scheduler("calendar", seq).name == "calendar"
        assert build_scheduler("auto", seq, replicas=256,
                               jittered=True).name == \
            ("calendar" if _np is not None else "heap")
        assert build_scheduler("auto", seq, replicas=256,
                               jittered=False).name == "heap"
        assert build_scheduler("auto", seq, replicas=8,
                               jittered=True).name == "heap"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            build_scheduler("splay-tree", itertools.count())
        with pytest.raises(ValueError):
            Simulation(
                {0: _TimerChurn(0, ProtocolParams(n=1, f=0, p=0))},
                NetworkConfig(scheduler="splay-tree"),
            )

    def test_network_config_default_is_auto(self):
        assert NetworkConfig().scheduler == "auto"
        assert "auto" in SCHEDULERS

    def test_spec_round_trips_scheduler(self):
        from repro.eval.plan import ExperimentSpec

        spec = ExperimentSpec(protocol="banyan",
                              params=ProtocolParams(n=4, f=1, p=1),
                              scheduler="calendar")
        assert ExperimentSpec.from_dict(spec.to_dict()).scheduler == "calendar"
        assert spec.to_config().scheduler == "calendar"
        # Default-"auto" specs keep their serialized shape (cache hashes).
        default = ExperimentSpec(protocol="banyan",
                                 params=ProtocolParams(n=4, f=1, p=1))
        assert "scheduler" not in default.to_dict()
