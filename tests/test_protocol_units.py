"""Protocol-rule unit tests driven through a fake replica context.

These exercise individual ICC/Banyan rules (validity, vote emission, what a
proposal carries, round advancement conditions) without a network: a fake
context records every action the replica takes, and messages are injected
directly via ``on_message``.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

import pytest

from repro.core.banyan import BanyanReplica
from repro.protocols.base import ProtocolParams
from repro.protocols.icc import ICCReplica
from repro.runtime.context import ReplicaContext, Timer
from repro.types.blocks import Block, genesis_block
from repro.types.certificates import Notarization, UnlockProof
from repro.types.messages import BlockProposal, CertificateMessage, VoteMessage
from repro.types.votes import FastVote, NotarizationVote, VoteKind


class FakeContext(ReplicaContext):
    """Records every action; time is advanced manually by the test."""

    def __init__(self, replica_id: int, n: int) -> None:
        self._replica_id = replica_id
        self._n = n
        self.time = 0.0
        self.sent: List[Tuple[int, Any]] = []
        self.broadcasts: List[Any] = []
        self.timers: List[Tuple[float, str, Any]] = []
        self.committed: List[Tuple[Block, str]] = []

    @property
    def replica_id(self) -> int:
        return self._replica_id

    @property
    def replica_ids(self) -> list:
        return list(range(self._n))

    def now(self) -> float:
        return self.time

    def send(self, receiver: int, message) -> None:
        self.sent.append((receiver, message))

    def broadcast(self, message) -> None:
        self.broadcasts.append(message)

    def set_timer(self, delay: float, name: str, data: Any = None) -> int:
        self.timers.append((self.time + delay, name, data))
        return len(self.timers)

    def cancel_timer(self, timer_id: int) -> None:
        pass

    def commit(self, blocks, finalization_kind: str = "slow") -> None:
        for block in blocks:
            self.committed.append((block, finalization_kind))

    # Test helpers -------------------------------------------------------

    def broadcast_messages(self, message_type):
        return [m for m in self.broadcasts if isinstance(m, message_type)]

    def broadcast_votes(self, kind: Optional[VoteKind] = None):
        votes = [v for m in self.broadcast_messages(VoteMessage) for v in m.votes]
        if kind is None:
            return votes
        return [v for v in votes if v.kind is kind]


def _params(n=4, f=1, p=1):
    return ProtocolParams(n=n, f=f, p=p, rank_delay=0.4, payload_size=100)


def _proposal(block: Block, parent_voters=None, proposer_fast_vote=True,
              unlock_support=None) -> BlockProposal:
    """Build a proposal message the way an honest Banyan peer would."""
    parent_notarization = None
    if parent_voters is not None and block.parent_id is not None:
        parent_notarization = Notarization(
            round=block.round - 1, block_id=block.parent_id, voters=frozenset(parent_voters)
        )
    unlock_proof = None
    if unlock_support is not None and block.parent_id is not None:
        unlock_proof = UnlockProof(
            round=block.round - 1, block_id=block.parent_id,
            votes_by_block=((block.parent_id, frozenset(unlock_support)),),
        )
    fast_vote = None
    if proposer_fast_vote and block.rank == 0:
        fast_vote = FastVote(round=block.round, block_id=block.id, voter=block.proposer)
    return BlockProposal(block=block, parent_notarization=parent_notarization,
                         parent_unlock_proof=unlock_proof, fast_vote=fast_vote)


class TestICCUnitRules:
    def test_leader_proposes_immediately_on_start(self):
        replica = ICCReplica(0, _params())
        ctx = FakeContext(0, 4)
        # Round 1's round-robin leader is replica 1, so replica 0 only arms a
        # proposal timer; replica 1 proposes immediately.
        replica.on_start(ctx)
        assert not ctx.broadcast_messages(BlockProposal)
        assert any(name == "propose" for _, name, _ in ctx.timers)

        leader = ICCReplica(1, _params())
        leader_ctx = FakeContext(1, 4)
        leader.on_start(leader_ctx)
        proposals = leader_ctx.broadcast_messages(BlockProposal)
        assert len(proposals) == 1
        assert proposals[0].block.round == 1
        assert proposals[0].block.parent_id == genesis_block().id

    def test_notarization_vote_for_valid_leader_block(self):
        replica = ICCReplica(0, _params())
        ctx = FakeContext(0, 4)
        replica.on_start(ctx)
        block = Block(round=1, proposer=1, rank=0, parent_id=genesis_block().id, payload=b"x")
        replica.on_message(ctx, 1, _proposal(block))
        votes = ctx.broadcast_votes(VoteKind.NOTARIZATION)
        assert [v.block_id for v in votes] == [block.id]

    def test_block_with_wrong_rank_is_ignored(self):
        replica = ICCReplica(0, _params())
        ctx = FakeContext(0, 4)
        replica.on_start(ctx)
        # Proposer 2 has rank 1 in round 1 (round-robin), not rank 0.
        block = Block(round=1, proposer=2, rank=0, parent_id=genesis_block().id, payload=b"x")
        replica.on_message(ctx, 2, _proposal(block))
        assert block.id not in replica.tree
        assert not ctx.broadcast_votes()

    def test_higher_rank_block_waits_for_notarization_delay(self):
        replica = ICCReplica(0, _params())
        ctx = FakeContext(0, 4)
        replica.on_start(ctx)
        block = Block(round=1, proposer=2, rank=1, parent_id=genesis_block().id, payload=b"x")
        replica.on_message(ctx, 2, _proposal(block))
        # Rank-1 blocks may only be voted after Δ_notary(1) = 0.4 s.
        assert not ctx.broadcast_votes(VoteKind.NOTARIZATION)
        assert any(name == "notarize" for _, name, _ in ctx.timers)
        ctx.time = 0.5
        replica.on_timer(ctx, Timer(name="notarize", fire_time=0.4, data=1))
        assert [v.block_id for v in ctx.broadcast_votes(VoteKind.NOTARIZATION)] == [block.id]

    def test_round_advances_after_notarization_quorum(self):
        replica = ICCReplica(0, _params())
        ctx = FakeContext(0, 4)
        replica.on_start(ctx)
        block = Block(round=1, proposer=1, rank=0, parent_id=genesis_block().id, payload=b"x")
        replica.on_message(ctx, 1, _proposal(block))
        for voter in (1, 2, 3):
            vote = NotarizationVote(round=1, block_id=block.id, voter=voter)
            replica.on_message(ctx, voter, VoteMessage(votes=(vote,), sender=voter))
        assert replica.tree.is_notarized(block.id)
        assert replica.current_round == 2
        # Having voted only for this block, the replica also finalization-votes.
        assert [v.block_id for v in ctx.broadcast_votes(VoteKind.FINALIZATION)] == [block.id]

    def test_finalization_quorum_commits_the_chain(self):
        replica = ICCReplica(0, _params())
        ctx = FakeContext(0, 4)
        replica.on_start(ctx)
        block = Block(round=1, proposer=1, rank=0, parent_id=genesis_block().id, payload=b"x")
        replica.on_message(ctx, 1, _proposal(block))
        for voter in (1, 2, 3):
            notarization = NotarizationVote(round=1, block_id=block.id, voter=voter)
            finalization_vote = replica._make_vote(VoteKind.FINALIZATION, 1, block.id)
            replica.on_message(ctx, voter, VoteMessage(votes=(notarization,), sender=voter))
        from repro.types.votes import FinalizationVote

        for voter in (1, 2, 3):
            vote = FinalizationVote(round=1, block_id=block.id, voter=voter)
            replica.on_message(ctx, voter, VoteMessage(votes=(vote,), sender=voter))
        assert [b.round for b, _ in ctx.committed] == [1]
        assert replica.k_max == 1


class TestBanyanUnitRules:
    def test_rank0_proposal_without_proposer_fast_vote_is_invalid(self):
        replica = BanyanReplica(0, _params())
        ctx = FakeContext(0, 4)
        replica.on_start(ctx)
        block = Block(round=1, proposer=1, rank=0, parent_id=genesis_block().id, payload=b"x")
        replica.on_message(ctx, 1, _proposal(block, proposer_fast_vote=False))
        # The block is stored but not voted for (validity rule, Alg. 2 line 63).
        assert not ctx.broadcast_votes()

    def test_first_vote_carries_a_fast_vote(self):
        replica = BanyanReplica(0, _params())
        ctx = FakeContext(0, 4)
        replica.on_start(ctx)
        block = Block(round=1, proposer=1, rank=0, parent_id=genesis_block().id, payload=b"x")
        replica.on_message(ctx, 1, _proposal(block))
        assert [v.block_id for v in ctx.broadcast_votes(VoteKind.NOTARIZATION)] == [block.id]
        assert [v.block_id for v in ctx.broadcast_votes(VoteKind.FAST)] == [block.id]

    def test_leader_proposal_carries_fast_vote_and_parent_unlock_proof(self):
        params = _params()
        leader = BanyanReplica(1, params)
        ctx = FakeContext(1, 4)
        leader.on_start(ctx)
        proposals = ctx.broadcast_messages(BlockProposal)
        assert len(proposals) == 1
        proposal = proposals[0]
        assert proposal.fast_vote is not None
        assert proposal.fast_vote.voter == 1
        assert proposal.fast_vote.block_id == proposal.block.id
        # Extending genesis needs no unlock proof; extending a later block does.
        assert proposal.parent_unlock_proof is None

    def test_round_advance_requires_unlock(self):
        """A notarized but not unlocked block must not advance the round
        (Restriction 2); the unlock arrives via fast votes."""
        replica = BanyanReplica(0, _params())
        ctx = FakeContext(0, 4)
        replica.on_start(ctx)
        block = Block(round=1, proposer=1, rank=0, parent_id=genesis_block().id, payload=b"x")
        # Deliver the block without its proposer fast vote: invalid for voting,
        # so our replica never fast-votes it either.
        replica.on_message(ctx, 1, _proposal(block, proposer_fast_vote=False))
        for voter in (1, 2, 3):
            vote = NotarizationVote(round=1, block_id=block.id, voter=voter)
            replica.on_message(ctx, voter, VoteMessage(votes=(vote,), sender=voter))
        assert replica.tree.is_notarized(block.id)
        assert replica.current_round == 1  # still stuck: no unlock, no own fast vote
        # Now the proposer's fast vote and two more fast votes arrive: the
        # block unlocks (support > f + p = 2) and the replica can advance.
        replica.on_message(ctx, 1, _proposal(block, proposer_fast_vote=True))
        for voter in (2, 3):
            fast = FastVote(round=1, block_id=block.id, voter=voter)
            replica.on_message(ctx, voter, VoteMessage(votes=(fast,), sender=voter))
        assert replica.tree.is_unlocked(block.id)
        assert replica.current_round == 2

    def test_fast_quorum_fp_finalizes_rank0_block(self):
        replica = BanyanReplica(0, _params())
        ctx = FakeContext(0, 4)
        replica.on_start(ctx)
        block = Block(round=1, proposer=1, rank=0, parent_id=genesis_block().id, payload=b"x")
        replica.on_message(ctx, 1, _proposal(block))
        for voter in (2, 3):
            fast = FastVote(round=1, block_id=block.id, voter=voter)
            replica.on_message(ctx, voter, VoteMessage(votes=(fast,), sender=voter))
        # proposer (1) + replicas 2, 3 = 3 = n - p fast votes → FP-finalized.
        assert [(b.round, kind) for b, kind in ctx.committed] == [(1, "fast")]
        assert replica.fast_finalized_count == 1
        # A fast finalization certificate is broadcast (Addition 4).
        certificates = ctx.broadcast_messages(CertificateMessage)
        assert any(
            c.certificate is not None and c.certificate.__class__.__name__ == "FastFinalization"
            for c in certificates
        )

    def test_non_leader_blocks_never_fp_finalize(self):
        replica = BanyanReplica(0, _params())
        ctx = FakeContext(0, 4)
        replica.on_start(ctx)
        ctx.time = 1.0  # past the notarization delay for rank-1 blocks
        block = Block(round=1, proposer=2, rank=1, parent_id=genesis_block().id, payload=b"x")
        replica.on_message(ctx, 2, _proposal(block, proposer_fast_vote=False))
        for voter in (1, 2, 3):
            fast = FastVote(round=1, block_id=block.id, voter=voter)
            replica.on_message(ctx, voter, VoteMessage(votes=(fast,), sender=voter))
        # Even with n - p fast votes a rank-1 block is never FP-finalized.
        assert all(kind != "fast" for _, kind in ctx.committed)

    def test_banyan_quorum_is_smaller_than_icc_quorum_at_n19(self):
        params = ProtocolParams(n=19, f=4, p=4, rank_delay=0.4)
        replica = BanyanReplica(0, params)
        assert replica.notarization_quorum == 12  # ceil((19 + 4 + 1)/2)
        assert replica.fast_quorum == 15
        icc = ICCReplica(0, params)
        assert icc.notarization_quorum == 15  # n - f
