"""Integration tests for the HotStuff and Streamlet baselines, plus
cross-protocol comparisons of the latency ordering the paper reports."""

from __future__ import annotations

import pytest

from repro.net.faults import FaultPlan
from repro.net.latency import ConstantLatency
from tests.conftest import assert_consistent_chains, assert_no_conflicting_rounds, build_simulation


def _mean_proposer_latency(sim) -> float:
    latencies = []
    for replica_id in sim.replica_ids:
        protocol = sim.protocol(replica_id)
        commits = {r.block.id: r.commit_time for r in sim.commits_for(replica_id)}
        latencies.extend(
            commits[bid] - t for bid, t in protocol.proposal_times.items() if bid in commits
        )
    assert latencies, "expected at least one measured proposal"
    return sum(latencies) / len(latencies)


class TestHotStuff:
    def test_commits_and_agrees(self):
        sim = build_simulation("hotstuff", n=4, f=1)
        sim.run(until=10.0)
        assert_consistent_chains(sim)
        assert_no_conflicting_rounds(sim)
        assert len(sim.commits_for(0)) > 10

    def test_views_commit_in_order(self):
        sim = build_simulation("hotstuff", n=4, f=1)
        sim.run(until=10.0)
        rounds = [r.block.round for r in sim.commits_for(1)]
        assert rounds == sorted(rounds)

    def test_leaders_rotate(self):
        sim = build_simulation("hotstuff", n=4, f=1)
        sim.run(until=10.0)
        proposers = {r.block.proposer for r in sim.commits_for(0)}
        assert len(proposers) == 4

    def test_latency_exceeds_three_deltas(self):
        sim = build_simulation("hotstuff", n=4, f=1, latency=ConstantLatency(0.05))
        sim.run(until=10.0)
        assert _mean_proposer_latency(sim) > 3 * 0.05

    def test_recovers_from_crashed_leader_via_timeout(self):
        sim = build_simulation("hotstuff", n=4, f=1, faults=FaultPlan.with_crashed([2]))
        sim.run(until=30.0)
        assert len(sim.commits_for(0)) > 0
        assert_consistent_chains(sim)

    def test_works_at_n19(self):
        sim = build_simulation("hotstuff", n=19, f=6, payload_size=10_000)
        sim.run(until=8.0)
        assert_consistent_chains(sim)
        assert len(sim.commits_for(0)) > 5


class TestStreamlet:
    def test_commits_and_agrees(self):
        sim = build_simulation("streamlet", n=4, f=1)
        sim.run(until=15.0)
        assert_consistent_chains(sim)
        assert_no_conflicting_rounds(sim)
        assert len(sim.commits_for(0)) > 5

    def test_one_block_per_epoch_in_synchrony(self):
        sim = build_simulation("streamlet", n=4, f=1)
        sim.run(until=15.0)
        epochs = [r.block.round for r in sim.commits_for(0)]
        assert len(epochs) == len(set(epochs))
        assert epochs == sorted(epochs)

    def test_latency_is_tied_to_the_epoch_duration(self):
        """Streamlet's finality (three adjacent notarized epochs) means the
        proposer latency is governed by the epoch length 2Δ, not by the true
        network delay δ — which is why it trails the other protocols."""
        rank_delay = 0.4  # epoch duration (2Δ)
        sim = build_simulation("streamlet", n=4, f=1, rank_delay=rank_delay,
                               latency=ConstantLatency(0.05))
        sim.run(until=20.0)
        latency = _mean_proposer_latency(sim)
        assert rank_delay < latency < 3 * rank_delay

    def test_crash_fault_does_not_break_safety(self):
        sim = build_simulation("streamlet", n=4, f=1, faults=FaultPlan.with_crashed([1]))
        sim.run(until=30.0)
        assert_consistent_chains(sim)
        assert_no_conflicting_rounds(sim)

    def test_works_at_n19(self):
        sim = build_simulation("streamlet", n=19, f=6, payload_size=10_000)
        sim.run(until=10.0)
        assert_consistent_chains(sim)
        assert len(sim.commits_for(0)) >= 3


class TestCrossProtocolOrdering:
    """The latency ordering the paper's evaluation reports:
    Banyan < ICC < HotStuff, Streamlet (Table 1 / Figure 6)."""

    @pytest.fixture(scope="class")
    def latencies(self):
        results = {}
        for name in ("banyan", "icc", "hotstuff", "streamlet"):
            sim = build_simulation(name, n=4, f=1, p=1, latency=ConstantLatency(0.05), seed=7)
            sim.run(until=15.0)
            results[name] = _mean_proposer_latency(sim)
        return results

    def test_banyan_is_fastest(self, latencies):
        assert latencies["banyan"] == min(latencies.values())

    def test_icc_beats_hotstuff(self, latencies):
        assert latencies["icc"] < latencies["hotstuff"]

    def test_icc_beats_streamlet(self, latencies):
        assert latencies["icc"] < latencies["streamlet"]

    def test_banyan_improvement_over_icc_is_meaningful(self, latencies):
        improvement = (latencies["icc"] - latencies["banyan"]) / latencies["icc"]
        assert improvement > 0.15  # at least ~1 of 3 message delays saved

    def test_all_protocols_commit_identical_round_counts_roughly(self):
        """Block creation latency (chain growth) is similar for Banyan and ICC."""
        counts = {}
        for name in ("banyan", "icc"):
            sim = build_simulation(name, n=4, f=1, p=1, seed=8)
            sim.run(until=10.0)
            counts[name] = len(sim.commits_for(0))
        assert abs(counts["banyan"] - counts["icc"]) <= 2
