"""Tests for experiment plans, the sweep runner, caching, and serialization."""

from __future__ import annotations

import json
import os

import pytest

from repro.eval.experiment import ExperimentConfig, ExperimentResult, run_experiment
from repro.eval.plan import (
    ExperimentPlan,
    ExperimentSpec,
    derive_subseed,
    payload_sweep_plan,
)
from repro.eval.runner import cache_path, run_plan
from repro.eval.scenarios import (
    GLOBAL_RANK_DELAY,
    figure_from_plan,
    plan_figure_6b,
    plan_saturation_sweep,
)
from repro.net.faults import FaultPlan, PartitionPlan
from repro.net.topology import four_global_datacenters
from repro.protocols.base import ProtocolParams
from repro.workload.spec import WorkloadSpec


def _small_spec(**overrides) -> ExperimentSpec:
    defaults = dict(
        protocol="banyan",
        params=ProtocolParams(n=4, f=1, p=1, rank_delay=GLOBAL_RANK_DELAY,
                              payload_size=50_000),
        topology="global4",
        duration=5.0,
        warmup=1.0,
        seed=7,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


def _small_plan(seeds: int = 1) -> ExperimentPlan:
    specs = [
        _small_spec(label="banyan (p=1)", cell="payload=50000"),
        _small_spec(protocol="icc", label="icc", cell="payload=50000"),
    ]
    return ExperimentPlan(name="test", title="test plan", specs=specs
                          ).with_replications(seeds)


class TestSubSeeds:
    def test_replication_zero_keeps_base_seed(self):
        assert derive_subseed(13, 0, "net") == 13

    def test_deterministic_and_component_independent(self):
        assert derive_subseed(0, 1, "net") == derive_subseed(0, 1, "net")
        assert derive_subseed(0, 1, "net") != derive_subseed(0, 2, "net")
        assert derive_subseed(0, 1, "net") != derive_subseed(0, 1, "workload")
        assert derive_subseed(0, 1, "net") != derive_subseed(1, 1, "net")

    def test_replicated_specs_have_distinct_seeds(self):
        spec = _small_spec(workload=WorkloadSpec(rate=20.0, seed=7))
        reps = spec.replicated(3)
        assert [r.replication for r in reps] == [0, 1, 2]
        assert reps[0].seed == 7 and reps[0].workload.seed == 7
        net_seeds = {r.seed for r in reps}
        workload_seeds = {r.workload.seed for r in reps}
        assert len(net_seeds) == 3 and len(workload_seeds) == 3
        # Network and workload randomness must not share derived seeds.
        assert net_seeds.isdisjoint(workload_seeds - {7})

    def test_replications_must_be_positive(self):
        with pytest.raises(ValueError):
            _small_spec().replicated(0)


class TestSpecSerialization:
    def test_spec_round_trip(self):
        spec = _small_spec(
            faults=FaultPlan(drop_probability=0.01,
                             partitions=PartitionPlan.single(1.0, 2.0, [0], [1, 2, 3])),
            workload=WorkloadSpec(rate=25.0, seed=3),
            axis={"crashed_replicas": 2},
            cell="payload=50000",
            stragglers=1,
        )
        restored = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored.to_dict() == spec.to_dict()
        assert restored.content_hash() == spec.content_hash()

    def test_content_hash_sensitivity(self):
        spec = _small_spec()
        assert spec.content_hash() == _small_spec().content_hash()
        assert spec.content_hash() != _small_spec(seed=8).content_hash()
        assert spec.content_hash() != _small_spec(duration=6.0).content_hash()
        assert spec.content_hash() != _small_spec(replication=1).content_hash()

    def test_from_config_round_trip(self):
        config = ExperimentConfig(
            protocol="icc",
            params=ProtocolParams(n=4, f=1, rank_delay=GLOBAL_RANK_DELAY),
            topology=four_global_datacenters(4),
            duration=5.0,
            seed=3,
        )
        spec = ExperimentSpec.from_config(config)
        rebuilt = spec.to_config()
        assert rebuilt.to_dict() == config.to_dict()

    def test_plan_round_trip(self):
        plan = _small_plan(seeds=2)
        restored = ExperimentPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert restored.to_dict() == plan.to_dict()
        assert [s.content_hash() for s in restored.specs] == \
               [s.content_hash() for s in plan.specs]

    def test_named_and_placement_topologies_resolve(self):
        by_name = _small_spec(topology="global4").resolved_topology()
        by_placement = _small_spec(
            topology=tuple(by_name.datacenter(i).name for i in by_name.replica_ids)
        ).resolved_topology()
        assert [d.name for d in by_placement.datacenters()] == \
               [d.name for d in by_name.datacenters()]


class TestResultSerialization:
    def test_experiment_result_round_trip_lossless(self):
        result = run_experiment(_small_spec().to_config())
        restored = ExperimentResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert restored.row() == result.row()
        assert restored.to_dict() == result.to_dict()
        assert restored.metrics.latency_samples == result.metrics.latency_samples

    def test_workload_metrics_round_trip_lossless(self):
        spec = _small_spec(
            warmup=0.0,
            workload=WorkloadSpec(rate=30.0, seed=7, sample_interval=0.5),
        )
        result = run_experiment(spec.to_config())
        assert result.workload is not None and result.workload.committed > 0
        restored = ExperimentResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert restored.workload.to_dict() == result.workload.to_dict()
        assert restored.workload.occupancy == result.workload.occupancy
        assert restored.row() == result.row()

    def test_latency_override_is_rejected(self):
        from repro.net.latency import ConstantLatency

        config = ExperimentConfig(
            protocol="icc", params=ProtocolParams(n=4, f=1),
            latency=ConstantLatency(0.01),
        )
        with pytest.raises(ValueError):
            config.to_dict()
        with pytest.raises(ValueError):
            ExperimentSpec.from_config(config)

    def test_non_catalogue_topology_is_rejected(self):
        from repro.net.topology import Datacenter, Topology

        custom = Topology([Datacenter("moon-base-1", 0.0, 0.0)] * 4)
        config = ExperimentConfig(
            protocol="icc", params=ProtocolParams(n=4, f=1), topology=custom,
        )
        with pytest.raises(ValueError):
            config.to_dict()
        with pytest.raises(ValueError):
            ExperimentSpec.from_config(config)
        # Same name as a catalogue region but different coordinates: silently
        # substituting the catalogue entry would change the network.
        imposter = Topology([Datacenter("us-east-1", 0.0, 0.0)] * 4)
        with pytest.raises(ValueError):
            ExperimentSpec.from_config(
                ExperimentConfig(protocol="icc", params=ProtocolParams(n=4, f=1),
                                 topology=imposter))


class TestRunner:
    def test_parallel_results_identical_to_serial(self):
        plan = _small_plan(seeds=2)
        serial = run_plan(plan, jobs=1)
        parallel = run_plan(plan, jobs=2)
        assert [r.to_dict() for r in serial] == [r.to_dict() for r in parallel]
        assert [r.row() for r in serial] == [r.row() for r in parallel]

    def test_cache_hit_skips_execution(self, tmp_path):
        plan = _small_plan()
        cache_dir = str(tmp_path / "cache")
        first_events = []
        run_plan(plan, cache_dir=cache_dir, progress=first_events.append)
        assert [e.cached for e in first_events] == [False, False]
        assert all(os.path.exists(cache_path(cache_dir, s)) for s in plan.specs)

        second_events = []
        cached = run_plan(plan, cache_dir=cache_dir, progress=second_events.append)
        assert [e.cached for e in second_events] == [True, True]
        uncached = run_plan(plan)
        assert [r.to_dict() for r in cached] == [r.to_dict() for r in uncached]

    def test_no_cache_flag_reexecutes(self, tmp_path):
        plan = _small_plan()
        cache_dir = str(tmp_path / "cache")
        run_plan(plan, cache_dir=cache_dir)
        events = []
        run_plan(plan, cache_dir=cache_dir, use_cache=False, progress=events.append)
        assert [e.cached for e in events] == [False, False]

    def test_corrupt_cache_entry_is_reexecuted(self, tmp_path):
        plan = _small_plan()
        cache_dir = str(tmp_path / "cache")
        run_plan(plan, cache_dir=cache_dir)
        with open(cache_path(cache_dir, plan.specs[0]), "w") as handle:
            handle.write("{not json")
        events = []
        results = run_plan(plan, cache_dir=cache_dir, progress=events.append)
        assert sorted(e.cached for e in events) == [False, True]
        assert [r.to_dict() for r in results] == [r.to_dict() for r in run_plan(plan)]

    def test_result_order_follows_plan_order(self):
        plan = _small_plan(seeds=2)
        results = run_plan(plan, jobs=2)
        assert [r.label for r in results] == \
               [s.resolved_label() for s in plan.specs]

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            run_plan(_small_plan(), jobs=0)

    def test_progress_counts_monotonic(self):
        events = []
        run_plan(_small_plan(seeds=2), jobs=2, progress=events.append)
        assert [e.completed for e in events] == [1, 2, 3, 4]
        assert all(e.total == 4 for e in events)


class TestAggregation:
    def test_single_replication_rows_unchanged(self):
        plan = plan_figure_6b(payload_sizes=(500_000,), duration=5.0, warmup=1.0)
        figure = figure_from_plan(plan, run_plan(plan))
        direct = run_experiment(plan.specs[0].to_config())
        assert figure.series["banyan (p=1)"][0] == direct.row()
        assert not any("_ci95" in key for rows in figure.series.values()
                       for row in rows for key in row)

    def test_replicated_rows_carry_ci_columns(self):
        plan = plan_figure_6b(payload_sizes=(500_000,), duration=5.0, warmup=1.0,
                              seeds=2)
        figure = figure_from_plan(plan, run_plan(plan, jobs=2))
        row = figure.series["banyan (p=1)"][0]
        assert "mean_latency_ms_ci95" in row
        assert row["mean_latency_ms_ci95"] >= 0.0
        assert figure.replications == 2
        rendered = figure.render()
        assert "mean_latency_ms_ci95" in rendered and "2 replications" in rendered

    def test_mean_latency_averages_replications(self):
        plan = plan_figure_6b(payload_sizes=(500_000,), duration=5.0, warmup=1.0,
                              seeds=2)
        figure = figure_from_plan(plan, run_plan(plan))
        per_rep = [r.metrics.mean_latency for r in figure.results
                   if r.label == "banyan (p=1)"]
        assert len(per_rep) == 2
        assert figure.mean_latency("banyan (p=1)", 500_000) == \
               pytest.approx(sum(per_rep) / 2)

    def test_mean_latency_without_payload_uses_first_cell_only(self):
        plan = plan_figure_6b(payload_sizes=(500_000, 1_000_000), duration=5.0,
                              warmup=1.0)
        figure = figure_from_plan(plan, run_plan(plan))
        assert figure.mean_latency("icc") == figure.mean_latency("icc", 500_000)

    def test_axis_metadata_lands_in_rows(self):
        plan = plan_saturation_sweep(rates=(20.0,), duration=5.0)
        figure = figure_from_plan(plan, run_plan(plan))
        (rows,) = figure.series.values()
        assert rows[0]["offered_tx_per_s"] == 20.0

    def test_result_count_mismatch_rejected(self):
        plan = _small_plan()
        with pytest.raises(ValueError):
            figure_from_plan(plan, [])


class TestPayloadSweep:
    def test_payload_sweep_plan_cells(self):
        base = _small_spec()
        plan = payload_sweep_plan(base, [10_000, 20_000])
        assert [s.params.payload_size for s in plan.specs] == [10_000, 20_000]
        assert [s.cell for s in plan.specs] == ["payload=10000", "payload=20000"]

    def test_sweep_falls_back_for_latency_override(self):
        from repro.eval.experiment import sweep_payload_sizes
        from repro.net.latency import ConstantLatency

        base = ExperimentConfig(
            protocol="icc",
            params=ProtocolParams(n=4, f=1, rank_delay=GLOBAL_RANK_DELAY),
            duration=5.0, warmup=1.0, latency=ConstantLatency(0.05),
        )
        results = sweep_payload_sizes(base, [10_000, 20_000])
        assert [r.config.params.payload_size for r in results] == [10_000, 20_000]
        assert all(r.metrics.committed_blocks > 0 for r in results)
