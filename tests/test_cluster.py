"""Real-cluster tests: liveness over actual TCP, crash-kill recovery, and
socket-level chaos replay.

These spawn genuine ``python -m repro.cluster.node`` subprocesses talking
over localhost sockets with monotonic-clock timers — the full distance
from the simulator.  Horizons are kept short (a few wall-clock seconds per
cluster) with a small ``rank_delay``, which localhost latency easily
supports.
"""

import json
import time
from pathlib import Path

import pytest

from repro.chaos.schedule import ChaosSchedule, Fault
from repro.cluster.harness import (
    LocalCluster,
    cross_validate,
    encode_transaction,
    run_local_cluster,
    split_transactions,
)
from repro.cluster.node import MempoolSource, NodeConfig
from repro.smr.mempool import Mempool

# Cluster-wide timing used by every test: fast ranks (localhost), a short
# recovery timeout, and a horizon that leaves a checkable liveness tail
# (liveness bound = round_timeout + 2·n·rank_delay + 2).
RANK_DELAY = 0.05
ROUND_TIMEOUT = 0.5
N = 4


# --------------------------------------------------------------------- #
# Pure helpers (no processes)
# --------------------------------------------------------------------- #


def test_transaction_header_roundtrip():
    tx = encode_transaction(421, 7, 128)
    assert len(tx) == 128
    assert split_transactions(tx) == [(421, 7)]
    assert split_transactions(tx + encode_transaction(9, 1, 64)) \
        == [(421, 7), (9, 1)]
    assert split_transactions(b"cluster:r3:p1") == []


def test_mempool_source_drains_and_falls_back():
    mempool = Mempool()
    source = MempoolSource(mempool, max_block_bytes=256, payload_size=0)
    mempool.add(encode_transaction(1, 0, 100))
    mempool.add(encode_transaction(2, 0, 100))
    mempool.add(encode_transaction(3, 0, 100))
    payload, size = source.payload_for(4, 2)
    # Two 100-byte transactions fit the 256-byte budget; the third waits.
    assert [tx_id for tx_id, _ in split_transactions(payload)] == [1, 2]
    assert size == 200
    payload, _ = source.payload_for(5, 3)
    assert split_transactions(payload) == [(3, 0)]
    # Empty mempool: synthetic round-tagged payload of logical size 0.
    payload, size = source.payload_for(6, 0)
    assert payload == b"cluster:r6:p0" and size == 0


def test_node_config_roundtrip():
    config = NodeConfig(
        replica_id=2, protocol="banyan", n=4, f=1, p=1,
        peers={0: ("127.0.0.1", 9000), 1: ("127.0.0.1", 9001),
               2: ("127.0.0.1", 9002), 3: ("127.0.0.1", 9003)},
        schedule=ChaosSchedule(faults=(
            Fault(kind="crash", replica=1, start=1.0, end=2.0),
        )).to_dict(),
    )
    restored = NodeConfig.from_dict(json.loads(json.dumps(config.to_dict())))
    assert restored == config


# --------------------------------------------------------------------- #
# Live clusters
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("protocol", ["banyan", "icc", "hotstuff", "streamlet"])
def test_cluster_commits_within_deadline(protocol, tmp_path):
    """An n=4 cluster of real processes commits blocks for every protocol,
    and the committed sequences satisfy the simulator's invariants."""
    result = run_local_cluster(
        protocol, N, duration=4.0, rank_delay=RANK_DELAY,
        round_timeout=ROUND_TIMEOUT, check_invariants=True,
        log_dir=tmp_path / protocol,
    )
    assert result.exit_codes == {rid: 0 for rid in range(N)}, \
        f"node failures: {result.exit_codes}"
    assert result.committed_blocks >= 1, \
        f"{protocol}: no commits at the observer within the deadline"
    assert result.violations == [], \
        f"{protocol}: invariants violated: {result.violations}"
    # Every replica committed (liveness at each node, not just the observer).
    committed_by = {record.replica_id for record in result.records}
    assert committed_by == set(range(N))


def test_cluster_workload_latency(tmp_path):
    """Open-loop clients get their transactions committed end-to-end and
    latency samples are harvested into the metrics pipeline."""
    result = run_local_cluster(
        "banyan", N, duration=4.0, rank_delay=RANK_DELAY,
        round_timeout=ROUND_TIMEOUT, rate=40.0, tx_size=64,
        check_invariants=True, log_dir=tmp_path,
    )
    assert result.violations == []
    assert len(result.workload.submitted) > 0
    assert result.workload.commit_ratio > 0.5
    assert result.workload.latencies
    assert all(latency > 0 for latency in result.workload.latencies)
    assert result.metrics.latency_samples  # simulator-shaped RunMetrics


def test_cluster_survives_sigkill_and_restart(tmp_path):
    """SIGKILL one replica mid-run, restart it, and require the surviving
    quorum to keep committing throughout; the restarted process rejoins
    the network (its fresh chain is excluded from ancestry checks)."""
    duration = 7.0
    cluster = LocalCluster(
        "banyan", N, duration=duration, log_dir=tmp_path,
        rank_delay=RANK_DELAY, round_timeout=ROUND_TIMEOUT,
    )
    cluster.start()
    try:
        kill_at = cluster.start_at + 2.0
        time.sleep(max(0.0, kill_at - time.time()))
        cluster.kill(3)
        time.sleep(1.5)
        cluster.restart(3)
        exit_codes = cluster.wait()
    finally:
        cluster.stop()
    records, errors = cluster.commit_records()
    assert errors == []
    assert all(exit_codes[rid] == 0 for rid in range(3)), exit_codes
    # The survivors kept committing *after* the kill.
    for rid in range(3):
        later = [r for r in records
                 if r.replica_id == rid and r.commit_time > 3.5]
        assert later, f"replica {rid} stopped committing after the kill"
    violations = cross_validate(
        records, n=N, schedule=ChaosSchedule(), duration=duration,
        liveness_bound=ROUND_TIMEOUT + 2 * N * RANK_DELAY + 2.0,
        errors=errors, exclude=(3,),
    )
    assert violations == [], violations


def test_cluster_replays_chaos_schedule_to_expected_verdict(tmp_path):
    """A replayed fault schedule produces the verdict the fault model
    predicts: a recovering crash stays clean; losing the quorum (two
    permanent crashes with f=1) trips the liveness invariant and nothing
    else."""
    benign = ChaosSchedule(faults=(
        Fault(kind="crash", replica=3, start=1.0, end=2.0),
    ))
    result = run_local_cluster(
        "banyan", N, duration=6.0, rank_delay=RANK_DELAY,
        round_timeout=ROUND_TIMEOUT, schedule=benign,
        check_invariants=True, log_dir=tmp_path / "benign",
    )
    assert result.committed_blocks >= 1
    assert result.violations == [], result.violations

    # Crashes at t=0 so no in-flight certificate can sneak a commit past
    # the heal instant — the verdict is deterministic: the two survivors
    # never reach quorum and never commit.
    quorum_loss = ChaosSchedule(faults=(
        Fault(kind="crash", replica=2, start=0.0),
        Fault(kind="crash", replica=3, start=0.0),
    ))
    result = run_local_cluster(
        "banyan", N, duration=6.0, rank_delay=RANK_DELAY,
        round_timeout=ROUND_TIMEOUT, schedule=quorum_loss,
        check_invariants=True, log_dir=tmp_path / "quorum-loss",
    )
    assert result.violations, "quorum loss must trip the liveness check"
    assert {v.invariant for v in result.violations} == {"liveness"}
    assert result.committed_blocks == 0


def test_cluster_cli_replays_repro_file(tmp_path, capsys):
    """``banyan-repro cluster --replay`` consumes the chaos engine's shrunk
    repro JSON format and reports the real-cluster verdict via exit code."""
    from repro.chaos.engine import ChaosTrialSpec
    from repro.cli import main

    spec = ChaosTrialSpec(protocol="banyan", n=N, f=1, p=1,
                          rank_delay=RANK_DELAY, round_timeout=ROUND_TIMEOUT,
                          payload_size=0, duration=6.0)
    schedule = ChaosSchedule(faults=(
        Fault(kind="crash", replica=2, start=0.0),
        Fault(kind="crash", replica=3, start=0.0),
    ))
    repro = tmp_path / "repro.json"
    repro.write_text(json.dumps({
        "spec": spec.to_dict(),
        "schedule": schedule.to_dict(),
    }), encoding="utf-8")
    code = main(["cluster", "--replay", str(repro), "--duration", "6",
                 "--log-dir", str(tmp_path / "logs")])
    out = capsys.readouterr().out
    assert code == 1
    assert "liveness" in out
