"""Tests for the client workload subsystem and its runtime seams.

Covers the external-event injection API of the simulator (including the
cancelled-timer bookkeeping fix), the mempool's O(1) byte accounting and
edge cases, arrival processes, transaction encoding, the open-/closed-loop
client pools, and the two workload scenario presets (saturation sweep and
flash crowd) end to end.
"""

from __future__ import annotations

import random

import pytest

from repro.eval.experiment import ExperimentConfig, run_experiment
from repro.eval.scenarios import flash_crowd, saturation_sweep
from repro.net.faults import FaultPlan
from repro.net.latency import ConstantLatency
from repro.protocols.base import Protocol, ProtocolParams
from repro.protocols.registry import create_replicas
from repro.runtime.simulator import NetworkConfig, Simulation
from repro.smr.mempool import Mempool
from repro.workload.arrivals import (
    ConstantRate,
    DiurnalArrivals,
    FlashCrowdArrivals,
    PoissonArrivals,
)
from repro.workload.clients import ClientPool
from repro.workload.payloads import MempoolPayloadSource
from repro.workload.spec import WorkloadSpec
from repro.workload.transactions import decode_tx_id, encode_transaction


# --------------------------------------------------------------------- #
# Mempool byte accounting and edge cases
# --------------------------------------------------------------------- #


class TestMempoolAccounting:
    def test_total_bytes_tracks_add_and_take(self):
        pool = Mempool()
        pool.add(b"x" * 30)
        pool.add(b"y" * 50)
        assert pool.total_bytes == 80
        taken = pool.take(40)
        assert taken == [b"x" * 30]
        assert pool.total_bytes == 50

    def test_oversized_first_transaction_not_taken_and_bytes_unchanged(self):
        pool = Mempool()
        pool.add(b"z" * 100)
        assert pool.take(50) == []
        assert len(pool) == 1
        assert pool.total_bytes == 100

    def test_add_all_short_circuits_on_full_pool(self):
        pool = Mempool(max_size=2)
        accepted = pool.add_all([b"a", b"b", b"c", b"d"])
        assert accepted == 2
        assert len(pool) == 2
        assert pool.total_bytes == 2

    def test_clear_resets_byte_count(self):
        pool = Mempool()
        pool.add_all([b"a" * 10, b"b" * 20])
        pool.clear()
        assert len(pool) == 0
        assert pool.total_bytes == 0
        # The pool is usable again after clearing.
        assert pool.add(b"c" * 5)
        assert pool.total_bytes == 5

    def test_max_bytes_backpressure(self):
        pool = Mempool(max_bytes=100)
        assert pool.add(b"a" * 60)
        assert not pool.add(b"b" * 60)
        assert pool.add(b"c" * 40)
        assert pool.total_bytes == 100

    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError):
            Mempool(max_bytes=0)

    def test_requeue_pushes_to_front_in_order(self):
        pool = Mempool()
        pool.add(b"later")
        pool.requeue([b"first", b"second"])
        assert pool.take(1000) == [b"first", b"second", b"later"]
        assert pool.total_bytes == 0


# --------------------------------------------------------------------- #
# Arrival processes
# --------------------------------------------------------------------- #


class TestArrivals:
    def test_constant_rate_is_evenly_spaced(self):
        arrivals = ConstantRate(20.0)
        rng = random.Random(0)
        assert arrivals.next_interarrival(0.0, rng) == pytest.approx(0.05)
        assert arrivals.rate(123.0) == 20.0

    def test_poisson_is_seed_deterministic_with_correct_mean(self):
        draws_a = [PoissonArrivals(50.0).next_interarrival(0, random.Random(7))
                   for _ in range(1)]
        draws_b = [PoissonArrivals(50.0).next_interarrival(0, random.Random(7))
                   for _ in range(1)]
        assert draws_a == draws_b
        rng = random.Random(1)
        arrivals = PoissonArrivals(50.0)
        draws = [arrivals.next_interarrival(0, rng) for _ in range(4000)]
        assert sum(draws) / len(draws) == pytest.approx(1 / 50.0, rel=0.1)

    def test_diurnal_rate_follows_the_sine(self):
        arrivals = DiurnalArrivals(100.0, amplitude=0.5, period=40.0)
        assert arrivals.rate(10.0) == pytest.approx(150.0)  # quarter period: peak
        assert arrivals.rate(30.0) == pytest.approx(50.0)   # three quarters: trough
        rng = random.Random(3)
        # Thinning keeps the long-run rate near the base rate.
        count, t = 0, 0.0
        while t < 80.0:
            t += arrivals.next_interarrival(t, rng)
            count += 1
        assert count == pytest.approx(100.0 * 80.0, rel=0.15)

    def test_flash_crowd_rate_window(self):
        arrivals = FlashCrowdArrivals(10.0, burst_rate=200.0,
                                      burst_start=5.0, burst_duration=2.0)
        assert arrivals.rate(4.9) == 10.0
        assert arrivals.rate(5.0) == 200.0
        assert arrivals.rate(6.9) == 200.0
        assert arrivals.rate(7.0) == 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0)
        with pytest.raises(ValueError):
            ConstantRate(-1)
        with pytest.raises(ValueError):
            DiurnalArrivals(10.0, amplitude=1.5)
        with pytest.raises(ValueError):
            FlashCrowdArrivals(10.0, burst_rate=20.0, burst_start=0, burst_duration=0)

    def test_non_finite_rates_rejected(self):
        # An infinite rate yields zero inter-arrival times and would freeze
        # the event loop at one timestamp; NaN schedules events at time nan.
        for bad in (float("inf"), float("nan")):
            with pytest.raises(ValueError):
                PoissonArrivals(bad)
            with pytest.raises(ValueError):
                ConstantRate(bad)
            with pytest.raises(ValueError):
                FlashCrowdArrivals(10.0, burst_rate=bad, burst_start=0,
                                   burst_duration=1)


# --------------------------------------------------------------------- #
# Transaction encoding
# --------------------------------------------------------------------- #


class TestTransactions:
    def test_roundtrip_and_padding(self):
        encoded = encode_transaction(42, 7, 256)
        assert len(encoded) == 256
        assert decode_tx_id(encoded) == 42

    def test_header_wins_over_tiny_size(self):
        encoded = encode_transaction(123456, 99, 4)
        assert decode_tx_id(encoded) == 123456
        assert len(encoded) >= 4

    def test_garbage_decodes_to_none(self):
        assert decode_tx_id(b"payload:r3:p1") is None
        assert decode_tx_id(b"tx:notanumber:0:") is None
        assert decode_tx_id(b"") is None


# --------------------------------------------------------------------- #
# Report helpers
# --------------------------------------------------------------------- #


class TestSparkline:
    def test_scales_to_peak_and_buckets(self):
        from repro.analysis.report import sparkline

        chart = sparkline([0.0, 5.0, 10.0])
        assert len(chart) == 3
        assert chart[0] == " " and chart[-1] == "@"

    def test_negative_values_clamp_to_baseline(self):
        from repro.analysis.report import sparkline

        assert sparkline([-5.0, 1.0]) == " @"
        assert sparkline([-1.0, 9.0])[0] == " "

    def test_empty_and_flat_zero(self):
        from repro.analysis.report import sparkline

        assert sparkline([]) == ""
        assert sparkline([0.0, 0.0]) == "  "

    def test_render_timeseries_labels(self):
        from repro.analysis.report import render_timeseries

        text = render_timeseries("occupancy", [0.0, 1.0, 2.0], [1.0, 4.0, 2.0])
        assert "peak 4" in text
        assert "t=0.0s .. t=2.0s" in text
        with pytest.raises(ValueError):
            render_timeseries("bad", [0.0], [1.0, 2.0])


# --------------------------------------------------------------------- #
# Simulator: external-event injection and timer bookkeeping
# --------------------------------------------------------------------- #


class _IdleReplica(Protocol):
    """A replica that does nothing; used to drive the simulator directly."""

    name = "idle"

    def on_start(self, ctx):
        self.ctx = ctx

    def on_message(self, ctx, sender, message):
        pass

    def on_timer(self, ctx, timer):
        pass


def _idle_simulation(n: int = 2, faults: FaultPlan = None) -> Simulation:
    params = ProtocolParams(n=n, f=0)
    replicas = {i: _IdleReplica(i, params) for i in range(n)}
    network = NetworkConfig(latency=ConstantLatency(0.01),
                            faults=faults or FaultPlan.none())
    return Simulation(replicas, network)


class TestExternalInjection:
    def test_callbacks_run_at_scheduled_times_in_order(self):
        sim = _idle_simulation()
        fired = []
        sim.schedule_external(2.0, lambda: fired.append(("b", sim.now)))
        sim.schedule_external(1.0, lambda: fired.append(("a", sim.now)))
        sim.run(until=5.0)
        assert fired == [("a", 1.0), ("b", 2.0)]
        assert sim.external_events_scheduled == 2

    def test_callbacks_can_reschedule_themselves(self):
        sim = _idle_simulation()
        ticks = []

        def tick():
            ticks.append(sim.now)
            if sim.now < 3.0:
                sim.schedule_external(1.0, tick)

        sim.schedule_external(1.0, tick)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0, 3.0]

    def test_external_events_survive_crashes(self):
        sim = _idle_simulation(faults=FaultPlan.with_crashed([0, 1]))
        fired = []
        sim.schedule_external(0.5, lambda: fired.append(sim.now))
        sim.run(until=1.0)
        assert fired == [0.5]

    def test_validation(self):
        sim = _idle_simulation()
        with pytest.raises(ValueError):
            sim.schedule_external(-0.1, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule_external(float("inf"), lambda: None)
        with pytest.raises(ValueError):
            sim.schedule_external(float("nan"), lambda: None)
        with pytest.raises(TypeError):
            sim.schedule_external(0.1, "not callable")


class TestTimerBookkeeping:
    def test_stale_cancel_does_not_leak(self):
        sim = _idle_simulation()
        sim.start()
        replica = sim.protocol(0)
        timer_id = replica.ctx.set_timer(0.1, "t")
        sim.run(until=1.0)  # the timer fires
        replica.ctx.cancel_timer(timer_id)          # stale cancel: already fired
        replica.ctx.cancel_timer(99999)             # never-armed id
        assert sim._cancelled_timers == set()
        assert sim._pending_timers == set()

    def test_cancelled_timer_does_not_fire_and_sets_drain(self):
        sim = _idle_simulation()
        sim.start()
        replica = sim.protocol(0)
        fired = []
        replica.on_timer = lambda ctx, timer: fired.append(timer.name)
        timer_id = replica.ctx.set_timer(0.5, "doomed")
        replica.ctx.cancel_timer(timer_id)
        sim.run(until=1.0)
        assert fired == []
        assert sim._cancelled_timers == set()
        assert sim._pending_timers == set()


# --------------------------------------------------------------------- #
# Client pools end to end
# --------------------------------------------------------------------- #


def _workload_simulation(spec: WorkloadSpec, duration: float, n: int = 4,
                         seed: int = 1):
    params = ProtocolParams(n=n, f=1, p=1, rank_delay=0.4)
    pool = spec.build_pool()
    source = MempoolPayloadSource(pool, max_block_bytes=spec.max_block_bytes)
    replicas = create_replicas("banyan", params, payload_source=source)
    network = NetworkConfig(latency=ConstantLatency(0.05), seed=seed)
    sim = Simulation(replicas, network)
    pool.attach(sim, stop_time=duration)
    sim.run(until=duration)
    return sim, pool


class TestClientPool:
    def test_open_loop_commits_transactions_with_positive_latency(self):
        spec = WorkloadSpec(mode="open", arrival="constant", rate=20.0,
                            tx_size=128, seed=5)
        sim, pool = _workload_simulation(spec, duration=10.0)
        metrics = pool.metrics(10.0)
        assert metrics.submitted > 150
        assert metrics.committed > 100
        assert metrics.dropped == 0
        assert all(latency > 0 for latency in metrics.latencies)
        assert metrics.p95_latency >= metrics.p50_latency > 0
        assert metrics.goodput_tx_per_s > 10
        # Committed block payloads decode back into workload transactions.
        tx_blocks = [record for record in sim.commits_for(0)
                     if decode_tx_id(record.block.payload) is not None]
        assert tx_blocks, "no committed block carried client transactions"

    def test_closed_loop_keeps_population_in_flight(self):
        spec = WorkloadSpec(mode="closed", num_clients=6, think_time=0.2,
                            tx_size=128, seed=2)
        sim, pool = _workload_simulation(spec, duration=10.0)
        metrics = pool.metrics(10.0)
        assert metrics.committed >= 6
        # A closed-loop client has at most one transaction outstanding.
        assert metrics.pending <= 6
        assert metrics.dropped == 0

    def test_backpressure_drops_when_mempool_full(self):
        spec = WorkloadSpec(mode="open", arrival="constant", rate=200.0,
                            tx_size=128, mempool_capacity=5,
                            max_block_bytes=256, seed=3)
        _, pool = _workload_simulation(spec, duration=8.0)
        metrics = pool.metrics(8.0)
        assert metrics.dropped > 0
        assert metrics.submitted == metrics.committed + metrics.dropped + metrics.pending

    def test_zero_think_time_with_full_mempool_does_not_livelock(self):
        # Regression: a zero-delay retry on backpressure used to re-enqueue
        # an event at the same timestamp forever, freezing the simulation.
        spec = WorkloadSpec(mode="closed", num_clients=16, think_time=0.0,
                            tx_size=128, mempool_capacity=2,
                            max_block_bytes=256, seed=6)
        _, pool = _workload_simulation(spec, duration=5.0)
        metrics = pool.metrics(5.0)
        assert metrics.committed > 0
        assert metrics.dropped > 0

    def test_occupancy_sampling_covers_the_run(self):
        spec = WorkloadSpec(mode="open", arrival="poisson", rate=30.0,
                            tx_size=128, sample_interval=0.5, seed=4)
        _, pool = _workload_simulation(spec, duration=10.0)
        metrics = pool.metrics(10.0)
        assert len(metrics.occupancy) == 20
        assert metrics.occupancy[-1].time == pytest.approx(10.0)
        assert metrics.peak_mempool_depth >= 0

    def test_pool_cannot_attach_twice(self):
        spec = WorkloadSpec(mode="open", rate=10.0)
        pool = spec.build_pool()
        sim = _idle_simulation()
        pool.attach(sim, stop_time=5.0)
        with pytest.raises(RuntimeError):
            pool.attach(sim, stop_time=5.0)

    def test_uncommitted_proposal_is_reclaimed_on_next_proposal(self):
        spec = WorkloadSpec(mode="open", arrival="constant", rate=10.0, tx_size=64)
        pool = spec.build_pool()
        source = MempoolPayloadSource(pool, max_block_bytes=spec.max_block_bytes)
        sim = _idle_simulation()
        pool.attach(sim, stop_time=5.0)
        for _ in range(3):
            pool._submit(0)
        # Consolidate the round-robin-routed txs into replica 0's mempool.
        pool.mempool(0).requeue(pool.mempool(1).take(10_000))

        payload_a, size_a = source.payload_for(1, 0)
        assert size_a == len(payload_a) > 0
        assert len(pool.mempool(0)) == 0
        # Round 1 is still undecided: the batch may yet commit, so it is NOT
        # reclaimed and the next proposal goes out empty.
        _, size_undecided = source.payload_for(2, 0)
        assert size_undecided == 0
        # A newer proposal with fresh txs must not orphan the deferred batch.
        pool._submit(0)
        pool.mempool(0).requeue(pool.mempool(1).take(10_000))
        payload_b, _ = source.payload_for(3, 0)
        assert payload_b != payload_a
        # Once the chain commits past both rounds without either batch, both
        # are abandoned and re-proposed together, oldest first.
        pool._max_committed_round = 3
        payload_c, _ = source.payload_for(4, 0)
        assert payload_c == payload_a + payload_b
        # Once committed, nothing is reclaimed and proposals go empty.
        pool._committed.update(range(4))
        _, size_d = source.payload_for(5, 0)
        assert size_d == 0

    def test_warmup_filters_early_transactions(self):
        spec = WorkloadSpec(mode="open", arrival="constant", rate=20.0,
                            tx_size=128, seed=5)
        _, pool = _workload_simulation(spec, duration=10.0)
        full = pool.metrics(10.0)
        trimmed = pool.metrics(8.0, warmup=2.0)
        assert 0 < trimmed.submitted < full.submitted
        assert trimmed.committed < full.committed
        assert len(trimmed.latencies) == trimmed.committed
        # Occupancy keeps the full timeline regardless of warm-up.
        assert trimmed.occupancy == full.occupancy

    def test_payload_map_is_pruned_after_commit(self):
        spec = WorkloadSpec(mode="open", arrival="constant", rate=20.0,
                            tx_size=128, seed=5)
        _, pool = _workload_simulation(spec, duration=10.0)
        # The map holds only still-in-flight proposals, not the whole chain.
        assert len(pool._payload_txs) <= 8

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(mode="sideways")
        with pytest.raises(ValueError):
            WorkloadSpec(arrival="fractal")
        with pytest.raises(ValueError):
            WorkloadSpec(tx_size=2048, max_block_bytes=1024)
        # A tiny tx_size does not bound the *encoded* size (the id header
        # dominates); the block budget must cover the worst case too.
        with pytest.raises(ValueError):
            WorkloadSpec(tx_size=8, max_block_bytes=16)


class TestInjectionDeterminism:
    def test_same_seed_produces_identical_commit_schedule(self):
        def commit_schedule():
            spec = WorkloadSpec(mode="open", arrival="poisson", rate=40.0,
                                tx_size=128, seed=11)
            sim, pool = _workload_simulation(spec, duration=10.0, seed=7)
            schedule = [
                (record.replica_id, record.block.id, record.commit_time)
                for replica_id in sim.replica_ids
                for record in sim.commits_for(replica_id)
            ]
            return schedule, pool.metrics(10.0)

        schedule_a, metrics_a = commit_schedule()
        schedule_b, metrics_b = commit_schedule()
        assert schedule_a == schedule_b
        assert metrics_a.latencies == metrics_b.latencies
        assert metrics_a.submitted == metrics_b.submitted

    def test_different_workload_seed_changes_the_schedule(self):
        def latencies(seed):
            spec = WorkloadSpec(mode="open", arrival="poisson", rate=40.0,
                                tx_size=128, seed=seed)
            _, pool = _workload_simulation(spec, duration=10.0, seed=7)
            return pool.metrics(10.0).latencies

        assert latencies(1) != latencies(2)


# --------------------------------------------------------------------- #
# Scenario presets (acceptance: saturation sweep and flash crowd)
# --------------------------------------------------------------------- #


class TestWorkloadScenarios:
    def test_saturation_sweep_reports_latency_percentiles_and_goodput(self):
        figure = saturation_sweep(rates=(10, 40), duration=10.0, seed=0)
        (label, rows), = figure.series.items()
        assert "banyan" in label
        assert len(rows) == 2
        for row, rate in zip(rows, (10, 40)):
            assert row["offered_tx_per_s"] == rate
            assert row["committed_tx"] > 0
            assert row["tx_p50_ms"] > 0
            assert row["tx_p95_ms"] >= row["tx_p50_ms"]
            assert row["tx_p99_ms"] >= row["tx_p95_ms"]
            assert row["goodput_tx_per_s"] > 0
        # Offered load is absorbed below saturation: goodput tracks the rate.
        assert rows[1]["goodput_tx_per_s"] > rows[0]["goodput_tx_per_s"]
        rendered = figure.render()
        assert "tx_p95_ms" in rendered and "goodput_tx_per_s" in rendered

    def test_saturation_sweep_is_deterministic(self):
        rows_a = saturation_sweep(rates=(25,), duration=8.0, seed=3).series
        rows_b = saturation_sweep(rates=(25,), duration=8.0, seed=3).series
        assert rows_a == rows_b

    def test_flash_crowd_fills_and_drains_the_mempools(self):
        figure = flash_crowd(base_rate=10.0, burst_rate=200.0, burst_start=6.0,
                             burst_duration=3.0, duration=30.0, seed=0)
        workload = figure.results[0].workload
        assert workload is not None
        samples = workload.occupancy
        assert samples, "flash crowd must sample mempool occupancy"
        pre_burst = max((s.transactions for s in samples if s.time < 6.0), default=0)
        peak = workload.peak_mempool_depth
        final = samples[-1].transactions
        # The spike overwhelms the per-round block budget...
        assert peak > max(pre_burst, 1) * 4
        # ...and the backlog drains once the burst passes.
        assert final < peak / 3
        assert workload.committed > 0

    def test_flash_crowd_is_deterministic(self):
        def occupancy():
            figure = flash_crowd(base_rate=10.0, burst_rate=150.0, duration=20.0,
                                 seed=5)
            return [(s.time, s.transactions)
                    for s in figure.results[0].workload.occupancy]

        assert occupancy() == occupancy()


class TestWorkloadCli:
    def test_inapplicable_flags_are_rejected(self, capsys):
        from repro.cli import main

        assert main(["workload", "saturation", "--burst-rate", "250"]) == 2
        assert "apply only to flash-crowd" in capsys.readouterr().err
        assert main(["workload", "flash-crowd", "--rates", "10,20"]) == 2
        assert "applies only to saturation" in capsys.readouterr().err

    def test_bad_rate_lists_fail_parsing(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["workload", "saturation", "--rates", "abc"])
        with pytest.raises(SystemExit):
            main(["workload", "saturation", "--rates", "10,-5"])
        with pytest.raises(SystemExit):
            main(["workload", "saturation", "--rates", "inf"])
        with pytest.raises(SystemExit):
            main(["workload", "saturation", "--rates", "nan"])

    def test_invalid_config_is_a_friendly_error(self, capsys):
        from repro.cli import main

        assert main(["workload", "saturation", "--tx-size", "70000"]) == 2
        assert "max_block_bytes" in capsys.readouterr().err


class TestExperimentIntegration:
    def test_run_experiment_carries_workload_metrics(self):
        params = ProtocolParams(n=4, f=1, p=1, rank_delay=0.4)
        config = ExperimentConfig(
            protocol="banyan", params=params, duration=10.0, warmup=0.0,
            latency=ConstantLatency(0.05), seed=0,
            workload=WorkloadSpec(mode="open", arrival="poisson", rate=25.0,
                                  tx_size=128, seed=1),
        )
        result = run_experiment(config)
        assert result.workload is not None
        assert result.workload.committed > 0
        row = result.row()
        assert "tx_p95_ms" in row and "goodput_tx_per_s" in row
        summary = result.workload.summary()
        assert summary["committed_tx"] > 0
        assert summary["p99_latency_s"] >= summary["p50_latency_s"]

    def test_run_experiment_without_workload_has_no_workload_metrics(self):
        params = ProtocolParams(n=4, f=1, p=1, rank_delay=0.4, payload_size=1_000)
        config = ExperimentConfig(protocol="banyan", params=params, duration=8.0,
                                  latency=ConstantLatency(0.05))
        result = run_experiment(config)
        assert result.workload is None
        assert "tx_p95_ms" not in result.row()
