"""Unit tests for protocol parameters (quorums, bounds) and the fast-path state.

These cover the arithmetic the paper's analysis relies on (Section 3,
Definitions 6.2 and 7.6) independently of any network execution.
"""

from __future__ import annotations

import math

import pytest

from repro.core.fastpath import FastPathState
from repro.protocols.base import ProtocolParams
from repro.types.certificates import UnlockProof


class TestProtocolParams:
    def test_icc_quorum_is_n_minus_f(self):
        params = ProtocolParams(n=19, f=6)
        assert params.icc_quorum == 13

    def test_banyan_quorum_formula(self):
        params = ProtocolParams(n=19, f=6)
        assert params.banyan_quorum == math.ceil((19 + 6 + 1) / 2) == 13

    def test_fast_quorum_is_n_minus_p(self):
        assert ProtocolParams(n=19, f=6, p=1).fast_quorum == 18
        assert ProtocolParams(n=19, f=4, p=4).fast_quorum == 15

    def test_unlock_threshold_is_f_plus_p(self):
        assert ProtocolParams(n=19, f=4, p=4).unlock_threshold == 8

    def test_resilience_bound_banyan(self):
        # n >= max(3f + 2p - 1, 3f + 1)
        ProtocolParams(n=19, f=6, p=1).validate_resilience(require_fast_path=True)
        ProtocolParams(n=19, f=4, p=4).validate_resilience(require_fast_path=True)
        with pytest.raises(ValueError):
            ProtocolParams(n=18, f=6, p=1).validate_resilience(require_fast_path=True)
        with pytest.raises(ValueError):
            ProtocolParams(n=18, f=4, p=4).validate_resilience(require_fast_path=True)

    def test_resilience_bound_with_p_one_equals_classic_bound(self):
        # With p = 1, Banyan needs only the classic n >= 3f + 1.
        ProtocolParams(n=4, f=1, p=1).validate_resilience(require_fast_path=True)
        with pytest.raises(ValueError):
            ProtocolParams(n=3, f=1, p=1).validate_resilience(require_fast_path=True)

    def test_resilience_bound_baselines(self):
        ProtocolParams(n=4, f=1).validate_resilience()
        with pytest.raises(ValueError):
            ProtocolParams(n=3, f=1).validate_resilience()

    def test_delays_scale_linearly_with_rank(self):
        params = ProtocolParams(n=4, f=1, rank_delay=0.4)
        assert params.proposal_delay(0) == 0.0
        assert params.proposal_delay(3) == pytest.approx(1.2)
        assert params.notarization_delay(2) == pytest.approx(0.8)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            ProtocolParams(n=0, f=0)
        with pytest.raises(ValueError):
            ProtocolParams(n=4, f=-1)
        with pytest.raises(ValueError):
            ProtocolParams(n=4, f=1, rank_delay=-0.1)

    def test_quorum_intersection_property(self):
        """Two Banyan quorums always intersect in an honest replica.

        This is the quorum arithmetic behind Lemma 8.4: two quorums of size
        ceil((n+f+1)/2) overlap in more than f replicas.
        """
        for f in range(1, 7):
            for p in range(1, f + 1):
                n = max(3 * f + 2 * p - 1, 3 * f + 1)
                quorum = math.ceil((n + f + 1) / 2)
                assert 2 * quorum - n > f

    def test_fast_and_slow_quorum_intersection(self):
        """A fast quorum and a notarization quorum intersect in an honest replica.

        This is the arithmetic behind Theorem 8.6's explicit-finalization case.
        """
        for f in range(1, 7):
            for p in range(1, f + 1):
                n = max(3 * f + 2 * p - 1, 3 * f + 1)
                slow_quorum = math.ceil((n + f + 1) / 2)
                fast_quorum = n - p
                assert slow_quorum + fast_quorum - n > f


class TestFastPathState:
    """Tests of Definitions 7.1–7.6 on hand-built scenarios."""

    def _state(self, f=1, p=1, n=4):
        return FastPathState(unlock_threshold=f + p, fast_quorum=n - p)

    def test_support_tracking(self):
        state = self._state()
        state.record_fast_vote("a", 0)
        state.record_fast_vote("a", 1)
        state.record_fast_vote("b", 1)
        assert state.support("a") == {0, 1}
        assert state.support_of(["a", "b"]) == {0, 1}
        assert state.support("missing") == frozenset()

    def test_max_block_is_best_supported_rank0(self):
        state = self._state()
        state.record_block("a", rank=0)
        state.record_block("b", rank=0)
        state.record_fast_vote("a", 0)
        state.record_fast_vote("b", 1)
        state.record_fast_vote("b", 2)
        assert state.max_block() == "b"
        assert set(state.non_max_blocks()) == {"a"}

    def test_max_block_none_without_rank0(self):
        state = self._state()
        state.record_block("x", rank=2)
        assert state.max_block() is None

    def test_non_leader_blocks(self):
        state = self._state()
        state.record_block("leader", rank=0)
        state.record_block("other", rank=3)
        assert state.non_leader_blocks() == ["other"]

    def test_condition1_unlocks_well_supported_leader_block(self):
        # n=4, f=1, p=1: threshold f+p = 2, so > 2 distinct supporters unlock.
        state = self._state()
        state.record_block("a", rank=0)
        for voter in (0, 1, 2):
            state.record_fast_vote("a", voter)
        decision = state.evaluate_unlocks()
        assert "a" in decision.unlocked_blocks
        assert not decision.all_unlocked

    def test_condition1_counts_non_leader_support_too(self):
        # Figure 4, round k: the rank-0 block has 2 fast votes and a rank-1
        # block has 1; the union exceeds f+p=2 so the rank-0 block unlocks.
        state = self._state()
        state.record_block("r0", rank=0)
        state.record_block("r1", rank=1)
        state.record_fast_vote("r0", 0)
        state.record_fast_vote("r0", 1)
        state.record_fast_vote("r1", 2)
        decision = state.evaluate_unlocks()
        assert "r0" in decision.unlocked_blocks
        assert not decision.all_unlocked

    def test_condition2_unlocks_everything(self):
        # Figure 4, round k+1: support outside the best rank-0 block exceeds
        # f+p, so all blocks (current and future) are unlocked.
        state = self._state()
        state.record_block("a", rank=0)
        state.record_block("b", rank=0)
        state.record_block("c", rank=1)
        state.record_fast_vote("a", 0)
        state.record_fast_vote("b", 1)
        state.record_fast_vote("b", 2)
        state.record_fast_vote("c", 3)
        # max is "b" (2 votes); support of non-max {a, c} = {0, 3}... not enough.
        assert not state.evaluate_unlocks().all_unlocked
        state.record_fast_vote("a", 3)
        state.record_fast_vote("c", 2)
        # non-max support is now {0, 2, 3} > 2.
        decision = state.evaluate_unlocks()
        assert decision.all_unlocked
        assert {"a", "b", "c"} <= set(decision.unlocked_blocks)

    def test_condition2_is_sticky_for_future_blocks(self):
        state = self._state()
        state.record_block("a", rank=0)
        state.record_block("b", rank=1)
        state.record_block("c", rank=2)
        for voter, bid in [(0, "b"), (1, "b"), (2, "c")]:
            state.record_fast_vote(bid, voter)
        assert state.evaluate_unlocks().all_unlocked
        state.record_block("late", rank=3)
        assert "late" in state.evaluate_unlocks().unlocked_blocks

    def test_under_threshold_unlocks_nothing(self):
        state = self._state()
        state.record_block("a", rank=0)
        state.record_fast_vote("a", 0)
        state.record_fast_vote("a", 1)
        decision = state.evaluate_unlocks()
        assert decision.unlocked_blocks == frozenset()

    def test_fast_finalizable_requires_rank0_and_quorum(self):
        state = self._state()  # fast quorum 3
        state.record_block("leader", rank=0)
        state.record_block("other", rank=1)
        for voter in (0, 1, 2):
            state.record_fast_vote("leader", voter)
            state.record_fast_vote("other", voter)
        assert state.fast_finalizable_blocks() == ["leader"]

    def test_duplicate_votes_do_not_inflate_support(self):
        state = self._state()
        state.record_block("a", rank=0)
        for _ in range(5):
            state.record_fast_vote("a", 0)
        assert len(state.support("a")) == 1
        assert state.fast_finalizable_blocks() == []

    def test_merge_unlock_proof(self):
        state = self._state()
        state.record_block("a", rank=0)
        proof = UnlockProof(round=1, block_id="a",
                            votes_by_block=(("a", frozenset({0, 1, 2})),))
        state.merge_unlock_proof(proof)
        assert state.support("a") == {0, 1, 2}
        assert "a" in state.evaluate_unlocks().unlocked_blocks

    def test_build_unlock_proof_roundtrip(self):
        state = self._state()
        state.record_block("a", rank=0)
        state.record_fast_vote("a", 0)
        state.record_fast_vote("b", 1)
        proof = state.build_unlock_proof(round=3, block_id="a")
        assert proof.round == 3
        assert proof.support("a") == {0}
        assert proof.support("b") == {1}
        other = self._state()
        other.merge_unlock_proof(proof)
        assert other.support("a") == {0}

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            FastPathState(unlock_threshold=-1, fast_quorum=3)
        with pytest.raises(ValueError):
            FastPathState(unlock_threshold=2, fast_quorum=0)

    def test_lemma_8_1_pigeonhole_scenario(self):
        """With an equivocating leader and all honest fast votes in, at least
        one block is unlocked (the pigeonhole argument of Lemma 8.1)."""
        f, p = 2, 1
        n = max(3 * f + 2 * p - 1, 3 * f + 1)  # 7
        state = FastPathState(unlock_threshold=f + p, fast_quorum=n - p)
        state.record_block("x", rank=0)
        state.record_block("y", rank=0)
        # Byzantine leader fast-votes both of its equivocating blocks.
        state.record_fast_vote("x", 0)
        state.record_fast_vote("y", 0)
        # The n - f = 5 honest replicas split their single fast vote arbitrarily.
        for voter, bid in [(1, "x"), (2, "x"), (3, "y"), (4, "y"), (5, "x")]:
            state.record_fast_vote(bid, voter)
        decision = state.evaluate_unlocks()
        assert decision.unlocked_blocks or decision.all_unlocked
