"""Unit tests for the network substrate: topology, latency, bandwidth, faults."""

from __future__ import annotations

import random

import pytest

from repro.net.bandwidth import BandwidthModel
from repro.net.faults import CrashSchedule, FaultPlan, LossBurst, PartitionPlan
from repro.net.latency import ConstantLatency, GeoLatency, MatrixLatency, UniformLatency
from repro.net.topology import (
    AWS_REGIONS,
    Topology,
    four_global_datacenters,
    four_us_datacenters,
    great_circle_km,
    worldwide_datacenters,
)


class TestTopology:
    def test_four_global_spread_is_5554(self):
        topology = four_global_datacenters(19)
        counts = sorted(len(topology.replicas_in(dc.name)) for dc in topology.datacenters())
        assert counts == [4, 5, 5, 5]

    def test_four_global_with_four_replicas_is_one_each(self):
        topology = four_global_datacenters(4)
        assert all(len(topology.replicas_in(dc.name)) == 1 for dc in topology.datacenters())

    def test_worldwide_uses_19_distinct_datacenters(self):
        topology = worldwide_datacenters(19)
        assert len(topology.datacenters()) == 19

    def test_us_topology_uses_us_regions_only(self):
        topology = four_us_datacenters(19)
        assert all(dc.name.startswith("us-") for dc in topology.datacenters())

    def test_colocated_and_distance(self):
        topology = four_global_datacenters(19)
        assert topology.colocated(0, 4)  # round-robin placement: 0 and 4 share a DC
        assert topology.distance_km(0, 4) >= 0
        assert not topology.colocated(0, 1)
        assert topology.distance_km(0, 1) > 1000

    def test_great_circle_is_symmetric_and_zero_on_self(self):
        a = AWS_REGIONS["us-east-1"]
        b = AWS_REGIONS["ap-southeast-2"]
        assert great_circle_km(a, a) == pytest.approx(0.0)
        assert great_circle_km(a, b) == pytest.approx(great_circle_km(b, a))

    def test_known_distance_sanity(self):
        # Ireland to Frankfurt is roughly 1,000 km.
        distance = great_circle_km(AWS_REGIONS["eu-west-1"], AWS_REGIONS["eu-central-1"])
        assert 800 < distance < 1400

    def test_empty_topology_rejected(self):
        with pytest.raises(ValueError):
            Topology([])

    def test_replica_ids(self):
        assert four_global_datacenters(5).replica_ids == [0, 1, 2, 3, 4]


class TestLatencyModels:
    def test_constant_latency(self):
        model = ConstantLatency(0.1)
        rng = random.Random(0)
        assert model.delay(0, 1, rng) == pytest.approx(0.1)
        assert model.expected_delay(0, 1) == pytest.approx(0.1)
        assert model.delay(0, 0, rng) < 0.1  # self delivery is fast

    def test_constant_latency_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1)

    def test_uniform_latency_range(self):
        model = UniformLatency(0.01, 0.02)
        rng = random.Random(1)
        samples = [model.delay(0, 1, rng) for _ in range(100)]
        assert all(0.01 <= s <= 0.02 for s in samples)
        assert model.expected_delay(0, 1) == pytest.approx(0.015)

    def test_uniform_latency_validation(self):
        with pytest.raises(ValueError):
            UniformLatency(0.02, 0.01)

    def test_matrix_latency_lookup_and_symmetry(self):
        model = MatrixLatency({(0, 1): 0.05}, default_s=0.2)
        rng = random.Random(0)
        assert model.delay(0, 1, rng) == pytest.approx(0.05)
        assert model.delay(1, 0, rng) == pytest.approx(0.05)
        assert model.delay(0, 2, rng) == pytest.approx(0.2)

    def test_matrix_latency_jitter_bounds(self):
        model = MatrixLatency({(0, 1): 0.1}, jitter=0.5)
        rng = random.Random(0)
        samples = [model.delay(0, 1, rng) for _ in range(100)]
        assert all(0.1 <= s <= 0.15 + 1e-9 for s in samples)

    def test_geo_latency_scales_with_distance(self):
        topology = worldwide_datacenters(19)
        model = GeoLatency(topology, jitter=0.0)
        # Replica 0 (us-east-1) to replica 1 (us-east-2) is much closer than
        # to Sydney (ap-southeast-2, index 16 in the worldwide list).
        near = model.expected_delay(0, 1)
        far = model.expected_delay(0, 16)
        assert near < far
        assert far > 0.05  # trans-pacific one-way delay tens of ms

    def test_geo_latency_colocated_is_local(self):
        topology = four_global_datacenters(19)
        model = GeoLatency(topology, jitter=0.0)
        assert model.expected_delay(0, 4) < 0.005

    def test_geo_latency_jitter_adds_delay(self):
        topology = four_global_datacenters(4)
        model = GeoLatency(topology, jitter=0.2)
        rng = random.Random(0)
        nominal = GeoLatency(topology, jitter=0.0).expected_delay(0, 1)
        samples = [model.delay(0, 1, rng) for _ in range(50)]
        assert all(nominal <= s <= nominal * 1.2 + 1e-9 for s in samples)

    def test_max_expected_delay(self):
        topology = four_global_datacenters(4)
        model = GeoLatency(topology, jitter=0.0)
        worst = model.max_expected_delay([0, 1, 2, 3])
        assert worst == max(
            model.expected_delay(a, b) for a in range(4) for b in range(4) if a != b
        )


class TestBandwidth:
    def test_transfer_time_scales_with_size(self):
        model = BandwidthModel(wan_bytes_per_s=1_000_000, per_message_overhead_s=0.0)
        assert model.transfer_time(0, 1, 500_000) == pytest.approx(0.5)

    def test_lan_is_faster_than_wan(self):
        topology = four_global_datacenters(19)
        model = BandwidthModel(topology=topology)
        assert model.transfer_time(0, 4, 10_000_000) < model.transfer_time(0, 1, 10_000_000)

    def test_overhead_applies_to_empty_messages(self):
        model = BandwidthModel(per_message_overhead_s=0.001)
        assert model.transfer_time(0, 1, 0) == pytest.approx(0.001)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            BandwidthModel().transfer_time(0, 1, -1)

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            BandwidthModel(wan_bytes_per_s=0)


class TestFaults:
    def test_crash_schedule(self):
        schedule = CrashSchedule(crash_times={1: 5.0, 2: 0.0})
        assert schedule.is_crashed(2, 0.0)
        assert not schedule.is_crashed(1, 4.9)
        assert schedule.is_crashed(1, 5.0)
        assert schedule.crashed_replicas(10.0) == {1, 2}
        assert not schedule.is_crashed(0, 100.0)

    def test_crashed_from_start(self):
        plan = FaultPlan.with_crashed([0, 3])
        assert plan.is_crashed(0, 0.0)
        assert plan.is_crashed(3, 1.0)
        assert not plan.is_crashed(1, 1.0)
        assert plan.correct_replicas([0, 1, 2, 3]) == [1, 2]

    def test_drop_probability_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_probability=1.0)

    def test_random_drops_respect_probability(self):
        plan = FaultPlan(drop_probability=0.5)
        rng = random.Random(0)
        drops = sum(plan.should_drop(0, 1, 0.0, rng) for _ in range(1000))
        assert 350 < drops < 650

    def test_crashed_endpoints_drop_messages(self):
        plan = FaultPlan.with_crashed([2])
        rng = random.Random(0)
        assert plan.should_drop(2, 1, 0.0, rng)
        assert plan.should_drop(1, 2, 0.0, rng)
        assert not plan.should_drop(0, 1, 0.0, rng)

    def test_partition_delays_cross_group_messages_during_window(self):
        partitions = PartitionPlan.single(1.0, 2.0, [0, 1], [2, 3])
        plan = FaultPlan(partitions=partitions)
        rng = random.Random(0)
        # Partitions delay rather than drop (asynchrony before GST).
        assert not plan.should_drop(0, 2, 1.5, rng)
        assert plan.partition_release(0, 2, 1.5) == pytest.approx(2.0)
        assert plan.partition_release(3, 1, 1.5) == pytest.approx(2.0)
        assert plan.partition_release(0, 1, 1.5) is None
        assert plan.partition_release(0, 2, 2.5) is None
        assert plan.partition_release(0, 2, 0.5) is None

    def test_back_to_back_partition_windows_release_after_the_last(self):
        from repro.net.faults import PartitionWindow

        windows = (
            PartitionWindow(start=1.0, end=2.0, group_a=frozenset({0}), group_b=frozenset({1})),
            PartitionWindow(start=2.0, end=3.0, group_a=frozenset({0}), group_b=frozenset({1})),
        )
        plan = FaultPlan(partitions=PartitionPlan(windows=windows))
        assert plan.partition_release(0, 1, 1.5) == pytest.approx(3.0)

    def test_none_plan_drops_nothing(self):
        plan = FaultPlan.none()
        rng = random.Random(0)
        assert not any(plan.should_drop(a, b, 0.0, rng) for a in range(4) for b in range(4))


class TestHalfOpenBoundaries:
    """Every fault interval is half-open ``[start, end)`` — pinned here.

    The same predicate drives the send-time check (``should_drop``) and
    the delivery-time check (the simulator re-testing the receiver), so
    boundary instants behave symmetrically on both sides.
    """

    def test_crash_window_is_half_open(self):
        schedule = CrashSchedule(crash_times={1: 5.0}, recover_times={1: 8.0})
        assert not schedule.is_crashed(1, 4.999)
        assert schedule.is_crashed(1, 5.0)       # crashed at exactly the start
        assert schedule.is_crashed(1, 7.999)
        assert not schedule.is_crashed(1, 8.0)   # alive at exactly the recovery
        assert schedule.crashed_replicas(5.0) == {1}
        assert schedule.crashed_replicas(8.0) == frozenset()
        assert schedule.recover_time(1) == 8.0
        assert schedule.recover_time(0) is None

    def test_send_and_receive_checks_agree_at_the_boundary(self):
        plan = FaultPlan(crash_schedule=CrashSchedule(
            crash_times={2: 5.0}, recover_times={2: 8.0}))
        rng = random.Random(0)
        # Send side at the crash instant: both directions drop.
        assert plan.should_drop(2, 1, 5.0, rng)
        assert plan.should_drop(1, 2, 5.0, rng)
        # Receive side uses the same predicate: crashed at 5.0, up at 8.0.
        assert plan.is_crashed(2, 5.0)
        assert not plan.is_crashed(2, 8.0)
        assert not plan.should_drop(1, 2, 8.0, rng)

    def test_partition_window_is_half_open(self):
        partitions = PartitionPlan.single(1.0, 2.0, [0], [1])
        plan = FaultPlan(partitions=partitions)
        assert not plan.partitions.blocks(0, 1, 0.999)
        assert plan.partitions.blocks(0, 1, 1.0)    # blocked at exactly start
        assert plan.partitions.blocks(0, 1, 1.999)
        assert not plan.partitions.blocks(0, 1, 2.0)  # free at exactly end
        # A held message is released at exactly the window end.
        assert plan.partition_release(0, 1, 1.0) == pytest.approx(2.0)
        assert plan.partition_release(0, 1, 2.0) is None

    def test_loss_burst_window_is_half_open(self):
        burst = LossBurst(start=1.0, end=2.0, probability=1.0)
        assert not burst.covers(0.999)
        assert burst.covers(1.0)
        assert burst.covers(1.999)
        assert not burst.covers(2.0)
        plan = FaultPlan(loss_bursts=(burst,))
        rng = random.Random(0)
        assert plan.should_drop(0, 1, 1.0, rng)
        assert not plan.should_drop(0, 1, 2.0, rng)

    def test_recovery_validation(self):
        with pytest.raises(ValueError):
            CrashSchedule(crash_times={1: 5.0}, recover_times={1: 5.0})
        with pytest.raises(ValueError):
            CrashSchedule(recover_times={1: 5.0})

    def test_recovered_replica_counts_as_correct(self):
        plan = FaultPlan(crash_schedule=CrashSchedule(
            crash_times={0: 1.0, 1: 1.0}, recover_times={0: 2.0}))
        assert plan.correct_replicas([0, 1, 2]) == [0, 2]
        assert plan.correct_replicas([0, 1, 2], at_time=1.5) == [2]

    def test_loss_burst_validation(self):
        with pytest.raises(ValueError):
            LossBurst(start=1.0, end=1.0, probability=0.5)
        with pytest.raises(ValueError):
            LossBurst(start=1.0, end=2.0, probability=1.5)

    def test_burst_probability_only_applies_inside_window(self):
        plan = FaultPlan(loss_bursts=(LossBurst(1.0, 2.0, 0.5),))
        rng = random.Random(0)
        inside = sum(plan.should_drop(0, 1, 1.5, rng) for _ in range(1000))
        assert 350 < inside < 650
        assert not any(plan.should_drop(0, 1, 0.5, rng) for _ in range(100))

    def test_recovery_and_bursts_round_trip_and_stay_off_legacy_forms(self):
        plan = FaultPlan(
            crash_schedule=CrashSchedule(crash_times={1: 2.0},
                                         recover_times={1: 4.0}),
            loss_bursts=(LossBurst(1.0, 2.0, 0.25),),
        )
        rebuilt = FaultPlan.from_dict(plan.to_dict())
        assert rebuilt.to_dict() == plan.to_dict()
        assert rebuilt.crash_schedule.recover_times == {1: 4.0}
        assert rebuilt.loss_bursts == plan.loss_bursts
        # A plan without the new fault kinds serialises exactly as before,
        # keeping existing content hashes and cached results valid.
        legacy = FaultPlan.with_crashed([0])
        assert set(legacy.to_dict()) == {"crash_times", "drop_probability",
                                         "partitions"}


class TestCrashRecoveryInSimulation:
    """End-to-end crash/recovery semantics through the simulator."""

    def _simulate(self, crash, recover):
        from repro.net.latency import ConstantLatency
        from repro.protocols.base import ProtocolParams
        from repro.protocols.registry import create_replicas
        from repro.runtime.simulator import NetworkConfig, Simulation

        params = ProtocolParams(n=4, f=1, p=1, rank_delay=0.4, payload_size=1_000)
        replicas = create_replicas("banyan", params)
        faults = FaultPlan(crash_schedule=CrashSchedule(
            crash_times={3: crash},
            recover_times={3: recover} if recover is not None else {},
        ))
        simulation = Simulation(replicas, NetworkConfig(
            latency=ConstantLatency(0.05), faults=faults, seed=2))
        simulation.run(until=15.0)
        return simulation

    def test_replica_stops_and_resumes_receiving(self):
        simulation = self._simulate(crash=3.0, recover=6.0)
        commits = simulation.commits_for(3)
        assert commits, "the replica committed before the crash"
        # No commits during the crash window; the others keep going.
        assert not any(3.0 <= record.commit_time < 6.0 for record in commits)
        assert len(simulation.commits_for(0)) > 10

    def test_recovery_matches_permanent_crash_until_the_recovery_instant(self):
        recovered = self._simulate(crash=3.0, recover=6.0)
        permanent = self._simulate(crash=3.0, recover=None)
        cut = [r.block.id for r in recovered.commits_for(3)
               if r.commit_time < 6.0]
        gone = [r.block.id for r in permanent.commits_for(3)]
        assert cut == gone

    def test_crashed_at_zero_with_recovery_boots_late(self):
        simulation = self._simulate(crash=0.0, recover=2.0)
        protocol = simulation.protocol(3)
        # The deferred on_start ran: the replica entered the protocol and
        # participated after its recovery.
        assert protocol.current_round > 0
        assert len(simulation.commits_for(0)) > 10
