"""Unit tests for blocks, votes, certificates, and wire messages."""

from __future__ import annotations

import pytest

from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import sign
from repro.types.blocks import Block, genesis_block
from repro.types.certificates import (
    CertificateError,
    FastFinalization,
    Finalization,
    Notarization,
    UnlockProof,
)
from repro.types.messages import (
    BLOCK_HEADER_SIZE,
    VOTE_WIRE_SIZE,
    BlockProposal,
    CertificateMessage,
    VoteMessage,
)
from repro.types.votes import (
    FastVote,
    FinalizationVote,
    NotarizationVote,
    VoteKind,
    make_vote,
)


class TestBlock:
    def test_genesis_is_singleton_value(self):
        assert genesis_block() == genesis_block()
        assert genesis_block().id == genesis_block().id

    def test_genesis_properties(self):
        genesis = genesis_block()
        assert genesis.is_genesis()
        assert genesis.round == 0
        assert genesis.parent_id is None
        assert genesis.rank == 0

    def test_block_id_is_deterministic(self):
        a = Block(round=1, proposer=0, rank=0, parent_id="p", payload=b"x")
        b = Block(round=1, proposer=0, rank=0, parent_id="p", payload=b"x")
        assert a.id == b.id

    def test_block_id_depends_on_payload(self):
        a = Block(round=1, proposer=0, rank=0, parent_id="p", payload=b"x")
        b = Block(round=1, proposer=0, rank=0, parent_id="p", payload=b"y")
        assert a.id != b.id

    def test_block_id_depends_on_round_and_proposer(self):
        a = Block(round=1, proposer=0, rank=0, parent_id="p")
        b = Block(round=2, proposer=0, rank=0, parent_id="p")
        c = Block(round=1, proposer=1, rank=0, parent_id="p")
        assert len({a.id, b.id, c.id}) == 3

    def test_size_defaults_to_payload_length(self):
        block = Block(round=1, proposer=0, rank=0, parent_id="p", payload=b"abcd")
        assert block.size == 4

    def test_logical_size_overrides_payload_length(self):
        block = Block(round=1, proposer=0, rank=0, parent_id="p", payload=b"tag",
                      payload_size=1_000_000)
        assert block.size == 1_000_000

    def test_non_genesis_is_not_genesis(self):
        block = Block(round=1, proposer=0, rank=0, parent_id=genesis_block().id)
        assert not block.is_genesis()


class TestVotes:
    def test_vote_kinds(self):
        assert NotarizationVote(round=1, block_id="b", voter=0).kind is VoteKind.NOTARIZATION
        assert FastVote(round=1, block_id="b", voter=0).kind is VoteKind.FAST
        assert FinalizationVote(round=1, block_id="b", voter=0).kind is VoteKind.FINALIZATION

    def test_make_vote_dispatches_on_kind(self):
        for kind, cls in [
            (VoteKind.NOTARIZATION, NotarizationVote),
            (VoteKind.FAST, FastVote),
            (VoteKind.FINALIZATION, FinalizationVote),
        ]:
            vote = make_vote(kind, 3, "block", 2)
            assert isinstance(vote, cls)
            assert vote.round == 3 and vote.block_id == "block" and vote.voter == 2

    def test_signed_payload_excludes_voter(self):
        vote = NotarizationVote(round=5, block_id="b", voter=1)
        assert vote.signed_payload() == ("notarization", 5, "b")

    def test_votes_are_hashable_and_comparable(self):
        a = FastVote(round=1, block_id="b", voter=0)
        b = FastVote(round=1, block_id="b", voter=0)
        assert a == b
        assert len({a, b}) == 1


class TestCertificates:
    def _notar_votes(self, voters, round=1, block_id="b"):
        return [NotarizationVote(round=round, block_id=block_id, voter=v) for v in voters]

    def test_from_votes_collects_voters(self):
        cert = Notarization.from_votes(self._notar_votes([0, 1, 2]))
        assert cert.voters == {0, 1, 2}
        assert len(cert) == 3

    def test_from_votes_requires_matching_kind(self):
        votes = [FastVote(round=1, block_id="b", voter=0)]
        with pytest.raises(CertificateError):
            Notarization.from_votes(votes)

    def test_from_votes_rejects_mixed_blocks(self):
        votes = self._notar_votes([0], block_id="a") + self._notar_votes([1], block_id="b")
        with pytest.raises(CertificateError):
            Notarization.from_votes(votes)

    def test_from_votes_rejects_empty(self):
        with pytest.raises(CertificateError):
            Notarization.from_votes([])

    def test_verify_threshold_by_voter_count(self):
        cert = Notarization(round=1, block_id="b", voters=frozenset({0, 1, 2}))
        assert cert.verify(None, threshold=3)
        assert not cert.verify(None, threshold=4)

    def test_verify_with_registry_checks_shares(self):
        registry = KeyRegistry.for_replicas(4)
        payload = (VoteKind.FINALIZATION.value, 1, "b")
        votes = [
            FinalizationVote(round=1, block_id="b", voter=v, signature=sign(payload, v, registry))
            for v in range(3)
        ]
        cert = Finalization.from_votes(votes)
        assert cert.verify(registry, threshold=3)

    def test_verify_with_registry_rejects_wrong_payload_signature(self):
        registry = KeyRegistry.for_replicas(4)
        votes = [
            FinalizationVote(round=1, block_id="b", voter=v,
                             signature=sign("unrelated", v, registry))
            for v in range(3)
        ]
        cert = Finalization.from_votes(votes)
        assert not cert.verify(registry, threshold=3)

    def test_fast_finalization_uses_fast_votes(self):
        votes = [FastVote(round=2, block_id="b", voter=v) for v in range(3)]
        cert = FastFinalization.from_votes(votes)
        assert cert.voters == {0, 1, 2}


class TestUnlockProof:
    def test_from_fast_votes_groups_by_block(self):
        votes = [
            FastVote(round=1, block_id="a", voter=0),
            FastVote(round=1, block_id="a", voter=1),
            FastVote(round=1, block_id="b", voter=2),
        ]
        proof = UnlockProof.from_fast_votes(1, "a", votes)
        assert proof.support("a") == {0, 1}
        assert proof.support("b") == {2}
        assert proof.support("missing") == frozenset()

    def test_total_voters_and_len(self):
        votes = [
            FastVote(round=1, block_id="a", voter=0),
            FastVote(round=1, block_id="b", voter=0),
            FastVote(round=1, block_id="b", voter=1),
        ]
        proof = UnlockProof.from_fast_votes(1, "a", votes)
        assert proof.total_voters() == {0, 1}
        assert len(proof) == 2

    def test_rejects_non_fast_votes(self):
        with pytest.raises(CertificateError):
            UnlockProof.from_fast_votes(1, "a", [NotarizationVote(round=1, block_id="a", voter=0)])

    def test_rejects_votes_from_other_rounds(self):
        with pytest.raises(CertificateError):
            UnlockProof.from_fast_votes(1, "a", [FastVote(round=2, block_id="a", voter=0)])


class TestMessages:
    def test_proposal_wire_size_includes_payload(self):
        block = Block(round=1, proposer=0, rank=0, parent_id="p", payload=b"x",
                      payload_size=10_000)
        proposal = BlockProposal(block=block)
        assert proposal.wire_size == BLOCK_HEADER_SIZE + 10_000

    def test_proposal_wire_size_includes_certificates(self):
        block = Block(round=1, proposer=0, rank=0, parent_id="p", payload_size=0)
        notarization = Notarization(round=0, block_id="p", voters=frozenset({0, 1, 2}))
        proposal = BlockProposal(block=block, parent_notarization=notarization)
        assert proposal.wire_size == BLOCK_HEADER_SIZE + 3 * VOTE_WIRE_SIZE

    def test_vote_message_wire_size_scales_with_votes(self):
        votes = (
            NotarizationVote(round=1, block_id="b", voter=0),
            FastVote(round=1, block_id="b", voter=0),
        )
        assert VoteMessage(votes=votes, sender=0).wire_size == 2 * VOTE_WIRE_SIZE

    def test_certificate_message_has_minimum_size(self):
        message = CertificateMessage(certificate=None, sender=1)
        assert message.wire_size >= VOTE_WIRE_SIZE

    def test_certificate_message_counts_unlock_proof(self):
        proof = UnlockProof.from_fast_votes(
            1, "a", [FastVote(round=1, block_id="a", voter=v) for v in range(4)]
        )
        message = CertificateMessage(certificate=None, unlock_proof=proof, sender=0)
        assert message.wire_size == 4 * VOTE_WIRE_SIZE
