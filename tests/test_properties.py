"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.stats import mean, median, percentile, stddev, variance
from repro.beacon import RoundRobinBeacon, SeededPermutationBeacon
from repro.blocktree.chain import FinalizedChain
from repro.blocktree.tree import BlockTree
from repro.core.fastpath import FastPathState
from repro.crypto.hashing import canonical_encode, digest
from repro.protocols.base import ProtocolParams
from repro.types.blocks import Block, genesis_block


# --------------------------------------------------------------------- #
# Hashing
# --------------------------------------------------------------------- #

json_like = st.recursive(
    st.none() | st.booleans() | st.integers() | st.text(max_size=20) | st.binary(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=5), children, max_size=4),
    max_leaves=12,
)


@given(json_like)
def test_canonical_encode_is_deterministic(value):
    assert canonical_encode(value) == canonical_encode(value)
    assert digest(value) == digest(value)


@given(st.lists(st.integers(), max_size=8), st.lists(st.integers(), max_size=8))
def test_digest_injective_on_distinct_int_lists(a, b):
    if a != b:
        assert digest(a) != digest(b)


# --------------------------------------------------------------------- #
# Beacons
# --------------------------------------------------------------------- #

@given(st.integers(min_value=1, max_value=25), st.integers(min_value=0, max_value=500))
def test_round_robin_permutation_property(n, round):
    beacon = RoundRobinBeacon(list(range(n)))
    permutation = beacon.permutation(round)
    assert sorted(permutation) == list(range(n))
    assert permutation[0] == beacon.leader(round)
    assert beacon.rank(round, permutation[-1]) == n - 1


@given(st.integers(min_value=1, max_value=25), st.integers(min_value=0, max_value=500),
       st.integers(min_value=0, max_value=2**31))
def test_seeded_beacon_is_a_permutation(n, round, seed):
    beacon = SeededPermutationBeacon(list(range(n)), seed=seed)
    assert sorted(beacon.permutation(round)) == list(range(n))


@given(st.integers(min_value=2, max_value=20))
def test_round_robin_fairness_over_full_cycle(n):
    beacon = RoundRobinBeacon(list(range(n)))
    leaders = [beacon.leader(k) for k in range(n)]
    assert sorted(leaders) == list(range(n))


# --------------------------------------------------------------------- #
# Quorum arithmetic (the bounds of Sections 3 and 8)
# --------------------------------------------------------------------- #

@given(st.integers(min_value=1, max_value=30), st.integers(min_value=1, max_value=30),
       st.integers(min_value=0, max_value=10))
def test_banyan_quorum_intersection_holds_at_or_above_bound(f, p, extra):
    p = min(p, f)
    n = max(3 * f + 2 * p - 1, 3 * f + 1) + extra
    params = ProtocolParams(n=n, f=f, p=p)
    # Two slow quorums intersect in at least one honest replica (Lemma 8.4).
    assert 2 * params.banyan_quorum - n >= f + 1
    # A fast quorum and a slow quorum intersect in an honest replica (Thm 8.6).
    assert params.fast_quorum + params.banyan_quorum - n >= f + 1
    # Two fast quorums intersect in an honest replica.
    assert 2 * params.fast_quorum - n >= f + 1
    # The unlock threshold is reachable by honest replicas alone.
    assert n - f > params.unlock_threshold


@given(st.integers(min_value=1, max_value=30))
def test_icc_quorum_intersection(f):
    n = 3 * f + 1
    params = ProtocolParams(n=n, f=f)
    assert 2 * params.icc_quorum - n >= f + 1


# --------------------------------------------------------------------- #
# Block tree and finalized chain
# --------------------------------------------------------------------- #

@st.composite
def linear_chain(draw, max_length=12):
    length = draw(st.integers(min_value=1, max_value=max_length))
    blocks = []
    parent = genesis_block()
    for round in range(1, length + 1):
        proposer = draw(st.integers(min_value=0, max_value=5))
        block = Block(round=round, proposer=proposer, rank=0, parent_id=parent.id,
                      payload=str(round).encode())
        blocks.append(block)
        parent = block
    return blocks


@given(linear_chain())
def test_chain_to_inverts_ancestors(blocks):
    tree = BlockTree()
    for block in blocks:
        tree.add_block(block)
    path = tree.chain_to(blocks[-1].id)
    assert [b.round for b in path] == list(range(0, len(blocks) + 1))
    assert all(tree.is_ancestor(a.id, blocks[-1].id) for a in path)


@given(linear_chain(), st.data())
def test_out_of_order_insertion_gives_same_tree(blocks, data):
    ordering = data.draw(st.permutations(blocks))
    in_order = BlockTree()
    for block in blocks:
        in_order.add_block(block)
    shuffled = BlockTree()
    for block in ordering:
        shuffled.add_block(block)
    assert len(in_order) == len(shuffled)
    assert [b.id for b in in_order.chain_to(blocks[-1].id)] == [
        b.id for b in shuffled.chain_to(blocks[-1].id)
    ]


@given(linear_chain(), st.integers(min_value=1, max_value=12))
def test_chain_prefix_consistency(blocks, cut):
    cut = min(cut, len(blocks))
    full = FinalizedChain()
    full.append_segment(blocks)
    partial = FinalizedChain()
    partial.append_segment(blocks[:cut])
    assert partial.prefix_of(full)
    assert partial.consistent_with(full)
    assert partial.common_prefix_length(full) == len(partial)


@given(linear_chain())
def test_incremental_append_equals_bulk_append(blocks):
    bulk = FinalizedChain()
    bulk.append_segment(blocks)
    incremental = FinalizedChain()
    for block in blocks:
        incremental.append_segment([block])
    assert [b.id for b in bulk] == [b.id for b in incremental]


# --------------------------------------------------------------------- #
# Fast-path unlock conditions (Definition 7.6)
# --------------------------------------------------------------------- #

@st.composite
def fast_vote_scenario(draw):
    f = draw(st.integers(min_value=1, max_value=4))
    p = draw(st.integers(min_value=1, max_value=f))
    n = max(3 * f + 2 * p - 1, 3 * f + 1)
    block_count = draw(st.integers(min_value=1, max_value=4))
    blocks = [f"block-{i}" for i in range(block_count)]
    ranks = [draw(st.integers(min_value=0, max_value=3)) for _ in blocks]
    if not any(rank == 0 for rank in ranks):
        ranks[0] = 0
    votes = draw(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=n - 1),
                      st.integers(min_value=0, max_value=block_count - 1)),
            max_size=3 * n,
        )
    )
    return n, f, p, blocks, ranks, votes


@given(fast_vote_scenario())
def test_unlock_evaluation_is_monotone_and_consistent(scenario):
    n, f, p, blocks, ranks, votes = scenario
    state = FastPathState(unlock_threshold=f + p, fast_quorum=n - p)
    for block_id, rank in zip(blocks, ranks):
        state.record_block(block_id, rank)
    unlocked_so_far = set()
    was_all_unlocked = False
    for voter, block_index in votes:
        state.record_fast_vote(blocks[block_index], voter)
        decision = state.evaluate_unlocks()
        # Monotonicity: unlocked blocks stay unlocked, condition 2 is sticky.
        assert unlocked_so_far <= set(decision.unlocked_blocks) or decision.all_unlocked
        assert not (was_all_unlocked and not decision.all_unlocked)
        unlocked_so_far = set(decision.unlocked_blocks)
        was_all_unlocked = decision.all_unlocked
        # A fast-finalizable block is always unlocked (n - p > f + p at the bound).
        for block_id in state.fast_finalizable_blocks():
            assert block_id in decision.unlocked_blocks


@given(fast_vote_scenario())
def test_fp_finalized_block_is_unique(scenario):
    """At most one rank-0 block can reach n - p fast votes when each replica
    votes once (Lemma 8.5's core counting argument)."""
    n, f, p, blocks, ranks, votes = scenario
    state = FastPathState(unlock_threshold=f + p, fast_quorum=n - p)
    for block_id, rank in zip(blocks, ranks):
        state.record_block(block_id, rank)
    voted = set()
    for voter, block_index in votes:
        if voter in voted:
            continue  # honest replicas cast at most one fast vote per round
        voted.add(voter)
        state.record_fast_vote(blocks[block_index], voter)
    assert len(state.fast_finalizable_blocks()) <= 1


# --------------------------------------------------------------------- #
# Statistics helpers
# --------------------------------------------------------------------- #

@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=50))
def test_percentile_bounds_and_ordering(values):
    assert min(values) <= median(values) <= max(values)
    assert percentile(values, 0) == min(values)
    assert percentile(values, 100) == max(values)
    assert median(values) <= percentile(values, 95) + 1e-9


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=2, max_size=50))
def test_variance_non_negative_and_stddev_consistent(values):
    assert variance(values) >= 0
    assert math.isclose(stddev(values) ** 2, variance(values), rel_tol=1e-9, abs_tol=1e-9)


@given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=50),
       st.floats(min_value=-1e5, max_value=1e5, allow_nan=False))
def test_mean_shift_invariance(values, shift):
    shifted = [v + shift for v in values]
    assert math.isclose(mean(shifted), mean(values) + shift, rel_tol=1e-9, abs_tol=1e-6)
