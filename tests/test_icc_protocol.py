"""Integration tests for the ICC protocol (the slow path of Section 4)."""

from __future__ import annotations

import pytest

from repro.net.faults import FaultPlan
from repro.net.latency import ConstantLatency, UniformLatency
from tests.conftest import assert_consistent_chains, assert_no_conflicting_rounds, build_simulation


class TestICCFaultFree:
    def test_all_replicas_commit_and_agree(self):
        sim = build_simulation("icc", n=4, f=1)
        sim.run(until=10.0)
        assert_consistent_chains(sim)
        assert_no_conflicting_rounds(sim)
        assert len(sim.commits_for(0)) > 10

    def test_committed_rounds_are_consecutive(self):
        sim = build_simulation("icc", n=4, f=1)
        sim.run(until=10.0)
        rounds = [record.block.round for record in sim.commits_for(0)]
        assert rounds == list(range(1, len(rounds) + 1))

    def test_only_leader_blocks_commit_in_synchrony(self):
        sim = build_simulation("icc", n=4, f=1)
        sim.run(until=10.0)
        for record in sim.commits_for(1):
            # Round-robin rotation: the proposer of round k is k mod n.
            assert record.block.proposer == record.block.round % 4
            assert record.block.rank == 0

    def test_finalization_is_slow_path_only(self):
        sim = build_simulation("icc", n=4, f=1)
        sim.run(until=10.0)
        assert all(r.finalization_kind == "slow" for r in sim.commits_for(2))

    def test_latency_close_to_three_deltas(self):
        delta = 0.05
        sim = build_simulation("icc", n=4, f=1, latency=ConstantLatency(delta))
        sim.run(until=10.0)
        protocol = sim.protocol(1)
        commits = {r.block.id: r.commit_time for r in sim.commits_for(1)}
        latencies = [
            commits[block_id] - proposed
            for block_id, proposed in protocol.proposal_times.items()
            if block_id in commits
        ]
        assert latencies, "replica 1 should have proposed and finalized blocks"
        mean = sum(latencies) / len(latencies)
        # ICC finalizes in three message delays plus processing/transfer time.
        assert 3 * delta <= mean < 5 * delta

    def test_works_at_n19(self, n19_params):
        sim = build_simulation("icc", n=19, f=6, rank_delay=0.6, payload_size=10_000)
        sim.run(until=8.0)
        assert_consistent_chains(sim)
        assert len(sim.commits_for(0)) > 5

    def test_deterministic_given_seed(self):
        def run(seed):
            sim = build_simulation("icc", n=4, f=1, seed=seed,
                                   latency=UniformLatency(0.02, 0.08))
            sim.run(until=5.0)
            return [(r.block.id, round(r.commit_time, 9)) for r in sim.commits_for(0)]

        assert run(3) == run(3)
        assert run(3) != run(4)

    def test_commits_with_jittery_latency(self):
        sim = build_simulation("icc", n=7, f=2, latency=UniformLatency(0.02, 0.08))
        sim.run(until=10.0)
        assert_consistent_chains(sim)
        assert len(sim.commits_for(3)) > 5


class TestICCCrashFaults:
    def test_tolerates_f_crashed_replicas(self):
        sim = build_simulation("icc", n=4, f=1, faults=FaultPlan.with_crashed([3]))
        sim.run(until=20.0)
        assert_consistent_chains(sim)
        assert len(sim.commits_for(0)) > 5
        assert sim.commits_for(3) == []

    def test_crashed_leader_rounds_recover_via_rank_one(self):
        sim = build_simulation("icc", n=4, f=1, rank_delay=0.4,
                               faults=FaultPlan.with_crashed([2]))
        sim.run(until=20.0)
        committed_rounds = {r.block.round for r in sim.commits_for(0)}
        # Rounds led by the crashed replica (round % 4 == 2) still commit,
        # with a block proposed by another replica.
        crashed_led = [r for r in committed_rounds if r % 4 == 2]
        assert crashed_led, "rounds with a crashed leader should still finalize"
        for record in sim.commits_for(0):
            if record.block.round % 4 == 2:
                assert record.block.proposer != 2

    def test_progress_slows_but_continues_with_crashes(self):
        healthy = build_simulation("icc", n=7, f=2)
        healthy.run(until=15.0)
        degraded = build_simulation("icc", n=7, f=2, faults=FaultPlan.with_crashed([5, 6]))
        degraded.run(until=15.0)
        assert len(degraded.commits_for(0)) > 0
        assert len(degraded.commits_for(0)) < len(healthy.commits_for(0))
        assert_consistent_chains(degraded)

    def test_mid_run_crash_preserves_safety(self):
        from repro.net.faults import CrashSchedule

        faults = FaultPlan(crash_schedule=CrashSchedule(crash_times={1: 5.0}))
        sim = build_simulation("icc", n=4, f=1, faults=faults)
        sim.run(until=15.0)
        assert_consistent_chains(sim)
        assert_no_conflicting_rounds(sim)

    def test_message_loss_preserves_safety(self):
        sim = build_simulation("icc", n=4, f=1, faults=FaultPlan(drop_probability=0.05))
        sim.run(until=15.0)
        assert_consistent_chains(sim)
        assert_no_conflicting_rounds(sim)


class TestICCWithSignatures:
    def test_signed_run_still_commits(self):
        sim = build_simulation("icc", n=4, f=1, sign_messages=True)
        sim.run(until=5.0)
        assert_consistent_chains(sim)
        assert len(sim.commits_for(0)) > 3
