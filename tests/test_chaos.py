"""Tests for the chaos engine: generation, invariants, shrinking, CLI.

Three layers of confidence:

* the *schedule layer* is deterministic, constraint-respecting data;
* the *checker layer* actually fires — a deliberately forked commit stream
  and a deliberately broken protocol both produce violations (the
  checker-of-the-checker tests);
* the *engine layer* shrinks failures to still-failing, 1-minimal
  schedules, serializes them, and replays them bit-for-bit.
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from repro.chaos import (
    ChaosConfig,
    ChaosSchedule,
    ChaosTrialSpec,
    Fault,
    InvariantChecker,
    ScheduleGenerator,
    replay_repro,
    run_chaos,
    run_chaos_schedule,
    run_chaos_trial,
    shrink_schedule,
    write_repro,
)
from repro.chaos.broken import register_broken_protocols
from repro.runtime.simulator import CommitRecord
from repro.types.blocks import Block, genesis_block


# --------------------------------------------------------------------- #
# Schedule generation
# --------------------------------------------------------------------- #


class TestScheduleGenerator:
    def _generator(self, **kwargs):
        defaults = dict(n=4, f=1, duration=15.0, horizon=8.0)
        defaults.update(kwargs)
        return ScheduleGenerator(**defaults)

    def test_deterministic_per_seed(self):
        generator = self._generator()
        for trial in range(20):
            a = generator.generate(seed=0, trial=trial)
            b = generator.generate(seed=0, trial=trial)
            assert a == b
            assert a.to_dict() == b.to_dict()

    def test_different_seeds_differ(self):
        generator = self._generator()
        schedules = {
            json.dumps(generator.generate(seed=seed, trial=0).to_dict(),
                       sort_keys=True)
            for seed in range(10)
        }
        assert len(schedules) > 1

    def test_respects_fault_budget(self):
        generator = self._generator(f=1)
        for trial in range(50):
            schedule = generator.generate(seed=3, trial=trial)
            byzantine = set(schedule.byzantine())
            crashed = set(schedule.crashed_replicas())
            assert len(byzantine) + len(crashed) <= 1
            assert not byzantine & crashed

    def test_timed_faults_end_by_horizon(self):
        # The horizon is floored at half the duration so short smoke runs
        # still inject faults; assert against the effective value.
        generator = self._generator(duration=10.0, horizon=6.0)
        assert generator.horizon == 6.0
        for trial in range(50):
            for fault in generator.generate(seed=1, trial=trial).faults:
                if fault.kind == "byzantine":
                    continue
                if fault.end is not None:
                    assert fault.end <= 6.0 + 1e-9
                else:
                    assert fault.start <= 6.0 + 1e-9

    def test_schedule_round_trips_through_json(self):
        generator = self._generator()
        for trial in range(20):
            schedule = generator.generate(seed=5, trial=trial)
            rebuilt = ChaosSchedule.from_dict(
                json.loads(json.dumps(schedule.to_dict()))
            )
            assert rebuilt == schedule

    def test_silent_only_for_protocols_without_equivocators(self):
        generator = self._generator(f=4, n=13, protocol="hotstuff")
        behaviors = set()
        for trial in range(60):
            behaviors.update(generator.generate(seed=0, trial=trial).byzantine().values())
        assert behaviors <= {"silent"}

    def test_drop_removes_exactly_one_fault(self):
        schedule = self._generator().generate(seed=0, trial=4)
        assert len(schedule) >= 2
        smaller = schedule.drop(0)
        assert len(smaller) == len(schedule) - 1
        assert smaller.faults == schedule.faults[1:]


class TestTrialSpec:
    def test_spec_round_trips_and_hashes_stably(self):
        spec = ChaosTrialSpec(protocol="icc", trial=7, seed=3)
        rebuilt = ChaosTrialSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec
        assert rebuilt.content_hash() == spec.content_hash()

    def test_distinct_trials_hash_differently(self):
        hashes = {ChaosTrialSpec(trial=t).content_hash() for t in range(10)}
        assert len(hashes) == 10

    def test_schedule_is_pure_function_of_spec(self):
        spec = ChaosTrialSpec(trial=11, seed=2)
        assert spec.schedule() == spec.schedule()

    def test_net_seed_independent_of_schedule_streams(self):
        spec = ChaosTrialSpec(trial=3)
        # Changing generator knobs must not perturb the network stream.
        tweaked = dataclasses.replace(
            spec, config=ChaosConfig(partition_probability=1.0)
        )
        assert spec.net_seed() == tweaked.net_seed()


# --------------------------------------------------------------------- #
# Checker-of-the-checker: the invariants must actually fire
# --------------------------------------------------------------------- #


def _commit(replica, block, time=1.0, kind="slow"):
    return CommitRecord(replica_id=replica, block=block, commit_time=time,
                        finalization_kind=kind)


class TestInvariantChecker:
    def _fork_blocks(self):
        """Two conflicting round-1 children of genesis."""
        genesis = genesis_block()
        left = Block(round=1, proposer=0, rank=0, parent_id=genesis.id,
                     payload=b"left")
        right = Block(round=1, proposer=1, rank=1, parent_id=genesis.id,
                      payload=b"right")
        return left, right

    def test_forked_commit_stream_raises_agreement_and_round_violations(self):
        left, right = self._fork_blocks()
        checker = InvariantChecker(replica_ids=[0, 1])
        checker.on_commit(_commit(0, left))
        checker.on_commit(_commit(1, right))
        invariants = {violation.invariant for violation in checker.violations}
        assert "agreement" in invariants
        assert "round-agreement" in invariants

    def test_fast_conflict_is_labelled_fast_path(self):
        left, right = self._fork_blocks()
        checker = InvariantChecker(replica_ids=[0, 1])
        checker.on_commit(_commit(0, left, kind="fast"))
        checker.on_commit(_commit(1, right, kind="fast"))
        invariants = {violation.invariant for violation in checker.violations}
        assert "fast-path-soundness" in invariants

    def test_non_extending_commit_raises_ancestry_violation(self):
        left, right = self._fork_blocks()
        orphan = Block(round=2, proposer=0, rank=0, parent_id=right.id,
                       payload=b"skip")
        checker = InvariantChecker(replica_ids=[0])
        checker.on_commit(_commit(0, left))
        checker.on_commit(_commit(0, orphan, time=2.0))
        invariants = {violation.invariant for violation in checker.violations}
        assert "certified-ancestry" in invariants

    def test_byzantine_commits_are_ignored(self):
        left, right = self._fork_blocks()
        checker = InvariantChecker(replica_ids=[0, 1], byzantine=[1])
        checker.on_commit(_commit(0, left))
        checker.on_commit(_commit(1, right))  # byzantine — unconstrained
        assert checker.violations == []

    def test_consistent_stream_is_clean(self):
        genesis = genesis_block()
        a = Block(round=1, proposer=0, rank=0, parent_id=genesis.id)
        b = Block(round=2, proposer=1, rank=0, parent_id=a.id)
        checker = InvariantChecker(replica_ids=[0, 1])
        for replica in (0, 1):
            checker.on_commit(_commit(replica, a, time=1.0))
            checker.on_commit(_commit(replica, b, time=2.0))
        assert checker.violations == []

    def test_violation_round_trips_through_json(self):
        left, right = self._fork_blocks()
        checker = InvariantChecker(replica_ids=[0, 1])
        checker.on_commit(_commit(0, left))
        checker.on_commit(_commit(1, right))
        from repro.chaos import Violation

        for violation in checker.violations:
            rebuilt = Violation.from_dict(json.loads(json.dumps(violation.to_dict())))
            assert rebuilt == violation


# --------------------------------------------------------------------- #
# Engine: honest protocols pass, the broken one fails and shrinks
# --------------------------------------------------------------------- #


class TestChaosEngine:
    def test_honest_trials_have_no_violations(self):
        for trial in range(3):
            for protocol in ("banyan", "icc"):
                result = run_chaos_trial(
                    ChaosTrialSpec(protocol=protocol, trial=trial, duration=10.0)
                )
                assert not result.failed, result.violations
                assert result.stats["honest_commits"] > 0

    def test_trial_is_deterministic(self):
        spec = ChaosTrialSpec(protocol="banyan", trial=1, duration=8.0)
        a = run_chaos_trial(spec)
        b = run_chaos_trial(spec)
        assert a.to_dict() == b.to_dict()

    def test_result_round_trips_through_json(self):
        from repro.chaos import ChaosTrialResult

        result = run_chaos_trial(ChaosTrialSpec(trial=2, duration=6.0))
        rebuilt = ChaosTrialResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert rebuilt.to_dict() == result.to_dict()

    def _failing_trial(self):
        """The first broken-protocol trial that violates an invariant."""
        register_broken_protocols()
        for trial in range(40):
            spec = ChaosTrialSpec(protocol="icc-broken", trial=trial)
            result = run_chaos_trial(spec)
            if result.failed:
                return spec, result
        pytest.fail("expected the broken protocol to fail within 40 trials")

    def test_broken_protocol_fails_and_shrinks_to_minimal_repro(self, tmp_path):
        spec, result = self._failing_trial()
        shrunk, shrunk_result = shrink_schedule(spec, result.schedule)
        # The acceptance bar: a minimal repro of at most 3 faults.
        assert 1 <= len(shrunk) <= 3
        assert len(shrunk) <= len(result.schedule)
        assert shrunk_result.failed

        # Shrinking is sound: the shrunk schedule is a sub-multiset of the
        # original and still fails when re-run from scratch.
        assert all(fault in result.schedule.faults for fault in shrunk.faults)
        assert run_chaos_schedule(spec, shrunk).failed

        # 1-minimality: dropping any remaining fault makes the failure vanish
        # (this is exactly the loop invariant of the shrinker's last pass).
        for index in range(len(shrunk)):
            assert not run_chaos_schedule(spec, shrunk.drop(index)).failed

        # The serialized repro replays bit-for-bit.
        path = str(tmp_path / "repro.json")
        write_repro(path, shrunk_result, original=result.schedule)
        replayed = replay_repro(path)
        assert replayed.failed
        assert [v.to_dict() for v in replayed.violations] == \
            [v.to_dict() for v in shrunk_result.violations]
        data = json.loads(open(path).read())
        assert data["replay"].startswith("banyan-repro chaos --replay")
        assert data["commit_trace_tail"]

    def test_shrink_rejects_passing_schedule(self):
        spec = ChaosTrialSpec(protocol="banyan", trial=0, duration=6.0)
        with pytest.raises(ValueError):
            shrink_schedule(spec, ChaosSchedule())

    def test_run_chaos_parallel_matches_serial_and_caches(self, tmp_path):
        cache = str(tmp_path / "cache")
        kwargs = dict(trials=6, seed=0, protocols=("banyan", "icc"),
                      duration=6.0, shrink=False)
        serial = run_chaos(jobs=1, cache_dir=cache, **kwargs)
        parallel = run_chaos(jobs=2, cache_dir=cache, use_cache=False, **kwargs)
        assert [r.to_dict() for r in serial.results] == \
            [r.to_dict() for r in parallel.results]
        # Every trial is now cached: a re-run must not execute anything.
        events = []
        cached = run_chaos(jobs=1, cache_dir=cache,
                           progress=events.append, **kwargs)
        assert all(event.cached for event in events)
        assert [r.to_dict() for r in cached.results] == \
            [r.to_dict() for r in serial.results]

    def test_run_chaos_writes_repro_for_failures(self, tmp_path):
        register_broken_protocols()
        repro_dir = str(tmp_path / "repros")
        report = run_chaos(trials=40, seed=0, protocols=("icc-broken",),
                           shrink=True, repro_dir=repro_dir)
        assert report.failures
        assert report.repro_paths
        for path in report.repro_paths:
            assert os.path.exists(path)
            assert replay_repro(path).failed

    def test_finalize_unwraps_straggler_wrappers(self):
        """Post-run checks must probe the *inner* protocol of a wrapper.

        A DelayedReplica holds the real tree/fast-path state on ``.inner``;
        before unwrapping, the notarized-commit and fast-path checks
        silently skipped every straggler-wrapped replica.
        """
        from repro.byzantine.behaviors import DelayedReplica
        from repro.net.latency import ConstantLatency
        from repro.protocols.base import ProtocolParams
        from repro.protocols.registry import create_replicas
        from repro.runtime.simulator import NetworkConfig, Simulation

        params = ProtocolParams(n=4, f=1, p=1, rank_delay=0.4, payload_size=100)
        replicas = create_replicas("banyan", params)
        replicas[0] = DelayedReplica(replicas[0], extra_delay=0.0)
        simulation = Simulation(replicas, NetworkConfig(
            latency=ConstantLatency(0.05), seed=1))
        checker = InvariantChecker(simulation.replica_ids).attach(simulation)
        simulation.run(until=8.0)
        commits = simulation.commits_for(0)
        assert commits
        # Tamper with the wrapped replica's inner tree: un-notarize one of
        # its committed blocks.  The checker must see through the wrapper
        # and flag it.
        inner = simulation.protocol(0).inner
        inner.tree._notarized.discard(commits[0].block.id)
        violations = checker.finalize(simulation, heal_time=0.0,
                                      liveness_bound=5.0, duration=8.0)
        assert any(v.invariant == "notarized-commit" and v.replica == 0
                   for v in violations)

    def test_oversized_f_is_a_clean_error(self, capsys):
        """--f beyond the resilience bound must not crash schedule sampling."""
        from repro.cli import main

        # Generation clamps its crash draws to the candidate pool, and the
        # protocol construction rejects the unsound bound cleanly.
        code = main(["chaos", "--n", "4", "--f", "6", "--trials", "3"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_straggler_window_limits_delay(self):
        """A straggler phase ends: the replica is prompt outside the window."""
        from repro.byzantine.behaviors import DelayedReplica
        from repro.protocols.base import ProtocolParams
        from repro.protocols.registry import create_replicas

        params = ProtocolParams(n=4, f=1, p=1, rank_delay=0.4, payload_size=100)
        replicas = create_replicas("banyan", params)
        wrapped = DelayedReplica(replicas[2], extra_delay=0.5, window=(1.0, 2.0))
        assert wrapped.window == (1.0, 2.0)
        with pytest.raises(ValueError):
            DelayedReplica(replicas[3], extra_delay=0.5, window=(2.0, 1.0))


class TestChaosCLI:
    def test_chaos_smoke(self, capsys):
        from repro.cli import main

        code = main(["chaos", "--trials", "4", "--duration", "4",
                     "--no-shrink"])
        out = capsys.readouterr().out
        assert code == 0
        assert "zero invariant violations" in out

    def test_chaos_broken_protocol_exits_nonzero_and_replays(self, tmp_path, capsys):
        from repro.cli import main

        repro_dir = str(tmp_path / "repros")
        code = main(["chaos", "--protocol", "icc-broken", "--trials", "20",
                     "--repro-dir", repro_dir])
        out = capsys.readouterr().out
        assert code == 1
        assert "failing trial" in out
        repros = [os.path.join(repro_dir, name) for name in os.listdir(repro_dir)]
        assert repros
        code = main(["chaos", "--replay", repros[0]])
        out = capsys.readouterr().out
        assert code == 1
        assert "violation" in out

    def test_chaos_unknown_protocol_errors(self, capsys):
        from repro.cli import main

        code = main(["chaos", "--protocol", "nosuch", "--trials", "2"])
        assert code == 2
        assert "error" in capsys.readouterr().err
