"""Tests for the execution-tracing module."""

from __future__ import annotations

import pytest

from repro.net.latency import ConstantLatency
from repro.protocols.base import ProtocolParams
from repro.protocols.registry import create_replicas
from repro.runtime.simulator import NetworkConfig, Simulation
from repro.runtime.trace import ProtocolTracer, TraceLog, trace_replicas


def _traced_simulation(protocol="banyan", n=4, seed=1):
    params = ProtocolParams(n=n, f=1, p=1, rank_delay=0.4, payload_size=1_000)
    replicas = create_replicas(protocol, params)
    log = TraceLog()
    traced = trace_replicas(replicas, shared_log=log)
    sim = Simulation(traced, NetworkConfig(latency=ConstantLatency(0.05), seed=seed))
    return sim, log


class TestTracing:
    def test_trace_records_all_event_kinds(self):
        sim, log = _traced_simulation()
        sim.run(until=3.0)
        counts = log.counts_by_kind()
        for kind in ("start", "recv", "broadcast", "commit"):
            assert counts.get(kind, 0) > 0, f"expected {kind} events"
        assert counts["start"] == 4

    def test_tracing_does_not_change_behaviour(self):
        def committed(traced: bool):
            params = ProtocolParams(n=4, f=1, p=1, rank_delay=0.4, payload_size=1_000)
            replicas = create_replicas("banyan", params)
            if traced:
                replicas = trace_replicas(replicas)
            sim = Simulation(replicas, NetworkConfig(latency=ConstantLatency(0.05), seed=3))
            sim.run(until=5.0)
            return [(r.block.id, round(r.commit_time, 9)) for r in sim.commits_for(0)]

        assert committed(traced=False) == committed(traced=True)

    def test_filtering_by_replica_and_kind(self):
        sim, log = _traced_simulation()
        sim.run(until=3.0)
        commits_r2 = log.events(kind="commit", replica_id=2)
        assert commits_r2
        assert all(e.replica_id == 2 and e.kind == "commit" for e in commits_r2)
        assert len(log.events(kind="commit")) >= len(commits_r2)

    def test_between_filters_by_time(self):
        sim, log = _traced_simulation()
        sim.run(until=4.0)
        early = log.between(0.0, 1.0)
        late = log.between(3.0, 4.0)
        assert early and late
        assert all(event.time < 1.0 for event in early)
        assert all(3.0 <= event.time < 4.0 for event in late)

    def test_render_produces_one_line_per_event(self):
        sim, log = _traced_simulation()
        sim.run(until=1.0)
        text = log.render(limit=10)
        assert len(text.splitlines()) == 10
        assert "broadcast" in log.render()

    def test_commit_events_carry_structured_data(self):
        sim, log = _traced_simulation()
        sim.run(until=3.0)
        commit = log.events(kind="commit")[0]
        assert commit.data is not None
        assert commit.data["kind"] in ("fast", "slow")
        assert commit.data["rounds"]

    def test_tracer_exposes_inner_proposal_times(self):
        sim, log = _traced_simulation()
        sim.run(until=3.0)
        tracer = sim.protocol(1)
        assert isinstance(tracer, ProtocolTracer)
        assert tracer.proposal_times is tracer.inner.proposal_times
        assert tracer.proposal_times  # replica 1 led round 1

    def test_separate_logs_when_not_shared(self):
        params = ProtocolParams(n=4, f=1, p=1, rank_delay=0.4, payload_size=1_000)
        replicas = create_replicas("icc", params)
        tracers = {rid: ProtocolTracer(proto) for rid, proto in replicas.items()}
        sim = Simulation(tracers, NetworkConfig(latency=ConstantLatency(0.05), seed=1))
        sim.run(until=2.0)
        assert all(len(tracer.log) > 0 for tracer in tracers.values())
        assert len({id(t.log) for t in tracers.values()}) == 4
