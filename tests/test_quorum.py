"""Property-style tests for the shared quorum/certificate engine.

The engine (:mod:`repro.smr.quorum`) is the one place vote tallies,
duplicate suppression, equivocation evidence, and threshold firing live;
these tests pin its contract independently of any protocol: the threshold
callback fires exactly once per block, duplicates never count, an
equivocating signer counts at most once per block (while being recorded as
evidence), and the behaviour holds at every quorum the protocols use —
``n - f``, ``⌈(n+f+1)/2⌉``, and ``n - p``.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.protocols.base import ProtocolParams
from repro.smr.quorum import CertificateCollector, QuorumTracker
from repro.types.votes import VoteKind


class TestQuorumTracker:
    def test_threshold_fires_exactly_once(self):
        fired = []
        tracker = QuorumTracker(3, on_threshold=fired.append)
        for voter in range(3):
            tracker.add_vote("b1", voter)
        assert fired == ["b1"]
        # Votes beyond the threshold never re-fire.
        tracker.add_vote("b1", 3)
        tracker.add_vote("b1", 4)
        assert fired == ["b1"]
        assert tracker.reached("b1")

    def test_fires_once_per_block_independently(self):
        fired = []
        tracker = QuorumTracker(2, on_threshold=fired.append)
        tracker.add_vote("a", 0)
        tracker.add_vote("b", 0)
        tracker.add_vote("b", 1)
        tracker.add_vote("a", 1)
        assert fired == ["b", "a"]

    def test_merged_voter_sets_fire_once(self):
        fired = []
        tracker = QuorumTracker(3, on_threshold=fired.append)
        tracker.add_voters("b", {0, 1, 2, 3})
        tracker.add_voters("b", {2, 3, 4})
        assert fired == ["b"]
        assert tracker.voters("b") == frozenset({0, 1, 2, 3, 4})

    def test_duplicate_votes_ignored(self):
        tracker = QuorumTracker(3)
        assert tracker.add_vote("b", 7) is True
        for _ in range(10):
            assert tracker.add_vote("b", 7) is False
        assert tracker.count("b") == 1
        assert not tracker.reached("b")

    def test_equivocating_signer_counted_at_most_once_per_block(self):
        tracker = QuorumTracker(2)
        tracker.add_vote("a", 0)
        tracker.add_vote("b", 0)  # same signer, different block
        tracker.add_vote("a", 0)  # duplicate on the first block
        assert tracker.count("a") == 1
        assert tracker.count("b") == 1
        assert tracker.equivocators() == frozenset({0})
        assert tracker.evidence(0) == ("a", "b")

    def test_honest_voters_produce_no_evidence(self):
        tracker = QuorumTracker(2)
        for voter in range(5):
            tracker.add_vote("b", voter)
        assert tracker.equivocators() == frozenset()
        assert tracker.evidence(0) == ("b",)

    def test_insertion_order_preserved(self):
        # Protocols iterate tallies deterministically; the engine pins
        # first-vote insertion order (what the hand-rolled dicts had).
        tracker = QuorumTracker(1)
        for block in ("c", "a", "b"):
            tracker.add_vote(block, 0)
        assert tracker.blocks() == ["c", "a", "b"]
        assert tracker.reached_blocks() == ["c", "a", "b"]

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            QuorumTracker(0)

    @pytest.mark.parametrize("n,f,p", [(4, 1, 1), (7, 2, 1), (19, 6, 1), (19, 4, 4)])
    def test_fires_at_every_protocol_quorum(self, n, f, p):
        """The engine is quorum-agnostic: n-f, ⌈(n+f+1)/2⌉, and n-p all work."""
        params = ProtocolParams(n=n, f=f, p=p)
        for threshold in (params.icc_quorum, params.banyan_quorum,
                          params.fast_quorum):
            assert threshold == math.ceil(threshold)
            fired = []
            tracker = QuorumTracker(threshold, on_threshold=fired.append)
            for voter in range(threshold - 1):
                tracker.add_vote("b", voter)
            assert fired == [] and not tracker.reached("b")
            tracker.add_vote("b", threshold - 1)
            assert fired == ["b"] and tracker.reached("b")

    def test_random_vote_streams_property(self):
        """Random streams with duplicates and equivocators keep the invariants:

        * a block's count equals its distinct voters;
        * the callback fires iff the threshold is met, exactly once;
        * the equivocator set is exactly the voters seen on >1 block.
        """
        rng = random.Random(1234)
        for _ in range(25):
            n = rng.randint(4, 25)
            threshold = rng.randint(1, n)
            blocks = ["x", "y", "z"][: rng.randint(1, 3)]
            fired = []
            tracker = QuorumTracker(threshold, on_threshold=fired.append)
            seen = {}
            for _ in range(rng.randint(1, 6 * n)):
                voter = rng.randrange(n)
                block = rng.choice(blocks)
                tracker.add_vote(block, voter)
                seen.setdefault(block, set()).add(voter)
            for block, voters in seen.items():
                assert tracker.count(block) == len(voters)
                assert tracker.reached(block) == (len(voters) >= threshold)
                assert fired.count(block) == (1 if len(voters) >= threshold else 0)
            by_voter = {}
            for block, voters in seen.items():
                for voter in voters:
                    by_voter.setdefault(voter, set()).add(block)
            expected = {voter for voter, supported in by_voter.items()
                        if len(supported) > 1}
            assert tracker.equivocators() == frozenset(expected)


class TestCertificateCollector:
    def test_trackers_keyed_by_round_and_kind(self):
        collector = CertificateCollector()
        notar = collector.tracker(1, VoteKind.NOTARIZATION, 3)
        final = collector.tracker(1, VoteKind.FINALIZATION, 3)
        assert notar is not final
        assert collector.tracker(1, VoteKind.NOTARIZATION, 3) is notar
        assert collector.tracker(2, VoteKind.NOTARIZATION, 3) is not notar

    def test_get_does_not_create(self):
        collector = CertificateCollector()
        assert collector.get(1, VoteKind.NOTARIZATION) is None
        collector.tracker(1, VoteKind.NOTARIZATION, 2)
        assert collector.get(1, VoteKind.NOTARIZATION) is not None

    def test_add_vote_shorthand(self):
        collector = CertificateCollector()
        assert collector.add_vote(3, VoteKind.FAST, "b", 0, threshold=2) is True
        assert collector.add_vote(3, VoteKind.FAST, "b", 0, threshold=2) is False
        assert collector.tracker(3, VoteKind.FAST, 2).count("b") == 1

    def test_equivocation_evidence_aggregated(self):
        collector = CertificateCollector()
        collector.add_vote(1, VoteKind.FAST, "a", 9, threshold=5)
        collector.add_vote(1, VoteKind.FAST, "b", 9, threshold=5)
        collector.add_vote(2, VoteKind.NOTARIZATION, "c", 4, threshold=5)
        assert collector.equivocation_evidence() == {
            (1, VoteKind.FAST): frozenset({9}),
        }
        assert collector.equivocators() == frozenset({9})
