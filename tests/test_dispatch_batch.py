"""Batched handler dispatch: sweep↔scalar equivalence and batch tallies.

The batched-dispatch PR has three byte-identity seams, all pinned here:

* the fused event loop (same-target same-instant delivery runs handed to
  ``on_messages`` in one call) must produce executions byte-identical to
  the reference scalar loop (:attr:`Simulation.force_scalar_dispatch`),
  across protocols, compute models, and fault plans;
* the protocol ``on_messages`` overrides (ICC/Banyan, HotStuff,
  Streamlet) must leave a replica in exactly the state the base
  per-message replay produces — including the order of sends, commits and
  timer arming — for vote waves with duplicates, equivocation, quorum
  crossings mid-batch, and interleaved non-vote messages;
* :meth:`repro.smr.quorum.QuorumTracker.add_votes` must match a scalar
  :meth:`add_vote` loop exactly (duplicate suppression, equivocation
  bookkeeping, crossing-exact stop + remainder feed).

Plus the boundary semantics that make sweeps safe: an interleaved timer
ends a sweep, crashes at the arrival instant drop every member in both
modes, and ``event_counts()`` (schedule-time) is dispatch-mode invariant
while ``dispatch_counts()`` (dispatch-time) is what distinguishes the
modes.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

import pytest

from repro.net.bandwidth import BandwidthModel
from repro.net.faults import CrashSchedule, FaultPlan
from repro.net.latency import ConstantLatency, GeoLatency
from repro.net.topology import four_global_datacenters
from repro.protocols.base import Protocol, ProtocolParams
from repro.protocols.registry import create_replicas, protocol_factory
from repro.runtime.context import ReplicaContext, Timer
from repro.runtime.simulator import NetworkConfig, Simulation
from repro.smr.quorum import QuorumTracker
from repro.types.blocks import Block
from repro.types.certificates import Notarization
from repro.types.messages import BlockProposal, VoteMessage
from repro.types.votes import FastVote, FinalizationVote, NotarizationVote

PROTOCOLS = ("banyan", "icc", "hotstuff", "streamlet")
N = 7
HORIZON = 6.0


def _fault_plan(fault: str) -> FaultPlan:
    if fault == "none":
        return FaultPlan.none()
    if fault == "crash":
        # One permanent crash plus one crash-and-recover, timed to provoke
        # view/round timeouts (HotStuff's new-view unicast storms are the
        # organic source of fused sweeps).
        return FaultPlan(crash_schedule=CrashSchedule(
            crash_times={1: 0.5, 2: 1.8}, recover_times={2: 3.2}))
    if fault == "loss":
        return FaultPlan(drop_probability=0.05)
    raise ValueError(fault)


def _simulation(protocol: str, compute: str, fault: str,
                latency=None, n: int = N) -> Simulation:
    params = ProtocolParams(n=n, f=1, p=1, rank_delay=0.2)
    protocols = create_replicas(protocol, params)
    network = NetworkConfig(
        latency=latency if latency is not None else ConstantLatency(0.03),
        faults=_fault_plan(fault), seed=11, compute=compute)
    return Simulation(protocols, network)


def _commit_digest(simulation: Simulation, n: int = N):
    return [
        (record.replica_id, record.block.round, record.block.id,
         record.commit_time, record.finalization_kind)
        for replica_id in range(n)
        for record in simulation.commits_for(replica_id)
    ]


def _execution_digest(simulation: Simulation, n: int = N):
    return {
        "commits": _commit_digest(simulation, n),
        "sent": simulation.messages_sent,
        "delivered": simulation.messages_delivered,
        "dropped": simulation.messages_dropped,
        "compute": simulation.compute_stats(),
        "now": simulation.now,
        "events": simulation.event_counts(),
    }


class TestSweepScalarEquivalence:
    """Fused dispatch vs the forced-scalar reference loop."""

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    @pytest.mark.parametrize("compute", ["zero", "crypto"])
    @pytest.mark.parametrize("fault", ["none", "crash", "loss"])
    def test_byte_identical_executions(self, protocol, compute, fault):
        swept = _simulation(protocol, compute, fault)
        swept.run(until=HORIZON)

        scalar = _simulation(protocol, compute, fault)
        scalar.force_scalar_dispatch = True
        scalar.run(until=HORIZON)

        assert scalar.dispatch_counts()["sweeps"] == 0
        assert _execution_digest(swept) == _execution_digest(scalar)
        # The matrix must not be vacuous: at least one commit per cell.
        assert swept.commits_for(0)

    def test_new_view_storms_actually_sweep(self):
        # The crash cell drives HotStuff through view timeouts; the
        # same-instant new-view unicasts to the next leader are the
        # organic fused-sweep case this PR optimises.
        swept = _simulation("hotstuff", "zero", "crash")
        swept.run(until=30.0)
        counts = swept.dispatch_counts()
        assert counts["sweeps"] > 0
        assert counts["swept_messages"] >= 2 * counts["sweeps"]

    def test_jittered_sbatch_path_is_mode_invariant(self):
        # Under jitter broadcasts ride the chained sbatch pipeline; forcing
        # scalar dispatch must not perturb it (sweeps only fuse plain
        # "message" events, never sbatch members).
        topology = four_global_datacenters(N)
        swept = _simulation("banyan", "zero", "none",
                            latency=GeoLatency(topology, jitter=0.05))
        swept.run(until=HORIZON)
        scalar = _simulation("banyan", "zero", "none",
                             latency=GeoLatency(topology, jitter=0.05))
        scalar.force_scalar_dispatch = True
        scalar.run(until=HORIZON)
        assert swept.event_counts()["sbatch"] > 0
        assert _execution_digest(swept) == _execution_digest(scalar)

    def test_mid_run_toggle_reselects_the_loop(self):
        # Flipping force_scalar_dispatch between run() calls must keep the
        # execution byte-identical to an untoggled run: the generation
        # bump makes the active loop return and run() re-select.
        toggled = _simulation("banyan", "zero", "none")
        toggled.run(until=2.0)
        toggled.force_scalar_dispatch = True
        toggled.run(until=4.0)
        toggled.force_scalar_dispatch = False
        toggled.run(until=HORIZON)

        plain = _simulation("banyan", "zero", "none")
        plain.run(until=HORIZON)
        assert _execution_digest(toggled) == _execution_digest(plain)


# --------------------------------------------------------------------- #
# Synthetic unicast storms: deterministic sweep shapes
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class _Ping:
    """Zero-size storm message tagged with its sender (zero wire size +
    zero per-message overhead keep arrivals at exactly the propagation
    delay, so timers can be armed for the precise arrival instant)."""

    origin: int
    tick: int
    wire_size: int = 0


class _StormNode(Protocol):
    """Hub-and-spoke storm: every spoke unicasts to the hub on a shared
    tick, so the hub receives one contiguous same-instant run per tick."""

    name = "storm"

    def __init__(self, replica_id: int, params: ProtocolParams,
                 hub: int = 0, ticks: int = 5) -> None:
        super().__init__(replica_id, params)
        self.hub = hub
        self.ticks = ticks
        self.log: List[Tuple[Any, ...]] = []

    def on_start(self, ctx) -> None:
        if self.replica_id != self.hub:
            ctx.set_timer(0.05, "tick", 1)

    def on_message(self, ctx, sender, message) -> None:
        self.log.append(("msg", ctx.now(), sender, message.origin, message.tick))

    def on_timer(self, ctx, timer) -> None:
        self.log.append(("timer", ctx.now(), timer.name, timer.data))
        if timer.name == "tick":
            ctx.send(self.hub, _Ping(origin=self.replica_id, tick=timer.data))
            if timer.data < self.ticks:
                ctx.set_timer(0.05, "tick", timer.data + 1)


class _BoundaryNode(Protocol):
    """Storm with a timer wedged mid-run: spokes below the hub id send
    before the hub arms a timer for the exact arrival instant, spokes
    above send after, so the heap holds ``msg msg timer msg msg`` at one
    instant and the sweep must break at the timer."""

    name = "storm-boundary"

    def __init__(self, replica_id: int, params: ProtocolParams,
                 hub: int = 2) -> None:
        super().__init__(replica_id, params)
        self.hub = hub
        self.log: List[Tuple[Any, ...]] = []

    def on_start(self, ctx) -> None:
        if self.replica_id == self.hub:
            ctx.set_timer(0.03, "mark")  # == the constant latency
        else:
            ctx.send(self.hub, _Ping(origin=self.replica_id, tick=0))

    def on_message(self, ctx, sender, message) -> None:
        self.log.append(("msg", ctx.now(), message.origin))

    def on_timer(self, ctx, timer) -> None:
        self.log.append(("timer", ctx.now(), timer.name))


class _DuckStormHub:
    """Duck-typed hub (not a Protocol subclass, no ``on_messages``): the
    dispatch tables must wire in the per-message fallback shim."""

    def __init__(self, replica_id: int) -> None:
        self.replica_id = replica_id
        self.log: List[Tuple[Any, ...]] = []

    def on_start(self, ctx) -> None:
        pass

    def on_message(self, ctx, sender, message) -> None:
        self.log.append((ctx.now(), sender, message.origin, message.tick))

    def on_timer(self, ctx, timer) -> None:
        pass


def _storm_simulation(node_cls=_StormNode, n: int = 5, faults=None,
                      hub_cls=None, **node_kwargs) -> Simulation:
    params = ProtocolParams(n=n, f=0, p=0)
    protocols = {
        i: node_cls(i, params, **node_kwargs) for i in range(n)
    }
    if hub_cls is not None:
        protocols[0] = hub_cls(0)
    network = NetworkConfig(latency=ConstantLatency(0.03),
                            bandwidth=BandwidthModel(per_message_overhead_s=0.0),
                            faults=faults or FaultPlan.none(), seed=3)
    return Simulation(protocols, network)


class TestUnicastStormSweeps:
    def test_storm_fuses_and_matches_scalar(self):
        swept = _storm_simulation()
        swept.run(until=1.0)
        counts = swept.dispatch_counts()
        # 4 spokes × 5 ticks, one contiguous run per tick.
        assert counts["sweeps"] == 5
        assert counts["swept_messages"] == 20

        scalar = _storm_simulation()
        scalar.force_scalar_dispatch = True
        scalar.run(until=1.0)
        assert scalar.dispatch_counts()["sweeps"] == 0
        for replica_id in range(5):
            assert (swept._protocols[replica_id].log
                    == scalar._protocols[replica_id].log)
        assert swept.event_counts() == scalar.event_counts()
        assert swept.messages_delivered == scalar.messages_delivered

    def test_timer_at_same_instant_splits_the_sweep(self):
        swept = _storm_simulation(node_cls=_BoundaryNode, hub=2)
        swept.run(until=1.0)
        counts = swept.dispatch_counts()
        # msg(0) msg(1) | timer | msg(3) msg(4): two sweeps of two.
        assert counts["sweeps"] == 2
        assert counts["swept_messages"] == 4

        scalar = _storm_simulation(node_cls=_BoundaryNode, hub=2)
        scalar.force_scalar_dispatch = True
        scalar.run(until=1.0)
        hub_log = swept._protocols[2].log
        assert hub_log == scalar._protocols[2].log
        # The timer fired between the two halves of the storm.
        assert [entry[0] for entry in hub_log] == [
            "msg", "msg", "timer", "msg", "msg"]

    @pytest.mark.parametrize("crash_at,delivered", [
        (0.08, 0),   # crashed at exactly the arrival instant: all dropped
        (0.09, 4),   # crash strictly after: the full storm lands
    ])
    def test_crash_at_the_arrival_boundary(self, crash_at, delivered):
        def build():
            faults = FaultPlan(crash_schedule=CrashSchedule(
                crash_times={0: crash_at}))
            return _storm_simulation(faults=faults, ticks=1)

        swept = build()
        swept.run(until=1.0)
        scalar = build()
        scalar.force_scalar_dispatch = True
        scalar.run(until=1.0)

        assert len(swept._protocols[0].log) == delivered
        assert swept._protocols[0].log == scalar._protocols[0].log
        assert swept.messages_delivered == scalar.messages_delivered
        assert swept.messages_dropped == scalar.messages_dropped

    def test_duck_typed_hub_gets_the_fallback_shim(self):
        swept = _storm_simulation(hub_cls=_DuckStormHub)
        swept.run(until=1.0)
        assert swept.dispatch_counts()["sweeps"] > 0

        scalar = _storm_simulation(hub_cls=_DuckStormHub)
        scalar.force_scalar_dispatch = True
        scalar.run(until=1.0)
        assert swept._protocols[0].log == scalar._protocols[0].log
        assert len(swept._protocols[0].log) == 20

    def test_event_counts_are_dispatch_mode_invariant(self):
        swept = _storm_simulation()
        swept.run(until=1.0)
        scalar = _storm_simulation()
        scalar.force_scalar_dispatch = True
        scalar.run(until=1.0)
        # Schedule-time counters never depend on the dispatch mode;
        # dispatch-time counters are exactly what distinguishes it.
        assert swept.event_counts() == scalar.event_counts()
        assert swept.dispatch_counts()["sweeps"] > 0
        assert scalar.dispatch_counts()["sweeps"] == 0


# --------------------------------------------------------------------- #
# Protocol-level batch tallies vs the base per-message replay
# --------------------------------------------------------------------- #


class _FakeContext(ReplicaContext):
    """Records every replica action; time stands still at 0."""

    def __init__(self, replica_id: int, n: int) -> None:
        self._replica_id = replica_id
        self._n = n
        self.actions: List[Tuple[Any, ...]] = []

    @property
    def replica_id(self) -> int:
        return self._replica_id

    @property
    def replica_ids(self):
        return list(range(self._n))

    def now(self) -> float:
        return 0.0

    def send(self, receiver, message) -> None:
        self.actions.append(("send", receiver, repr(message)))

    def broadcast(self, message) -> None:
        self.actions.append(("broadcast", repr(message)))

    def set_timer(self, delay, name, data=None) -> int:
        self.actions.append(("timer", delay, name, repr(data)))
        return len(self.actions)

    def cancel_timer(self, timer_id) -> None:
        self.actions.append(("cancel", timer_id))

    def commit(self, blocks, finalization_kind="slow") -> None:
        self.actions.append(
            ("commit", [b.id for b in blocks], finalization_kind))


def _vote_msg(vote) -> Tuple[int, VoteMessage]:
    return vote.voter, VoteMessage(votes=(vote,), sender=vote.voter)


def _quorum_state(replica):
    """Observable tally state of every (round, kind) tracker."""
    return {
        key: (sorted((repr(b), sorted(tracker.voters(b)))
                     for b in tracker.blocks()),
              sorted(tracker.equivocators()),
              tracker.fired_count())
        for key, tracker in replica.votes._trackers.items()
    }


def _round_one_batch(name: str, params: ProtocolParams):
    """A mixed round-1 delivery batch for ``name``: a valid leader
    proposal, then a vote wave crossing the quorum mid-run with a
    duplicate, an equivocating vote, and (for ICC-family) a trailing
    finalization wave and a multi-vote message that must fall back to
    the scalar path."""
    genesis = Block(round=0, proposer=-1, rank=0, parent_id=None)
    factory = protocol_factory(name)
    probe = factory(0, params)
    genesis_id = probe.tree.genesis_id
    block = Block(round=1, proposer=1, rank=0, parent_id=genesis_id,
                  payload=b"p", payload_size=100)
    rival = Block(round=1, proposer=1, rank=0, parent_id=genesis_id,
                  payload=b"q", payload_size=100)
    if name == "hotstuff":
        justify = Notarization(round=0, block_id=genesis_id,
                               voters=frozenset(range(params.n)))
        proposal = BlockProposal(block=block, parent_notarization=justify)
    else:
        proposal = BlockProposal(block=block)
    batch: List[Tuple[int, Any]] = [(1, proposal)]
    wave = [NotarizationVote(round=1, block_id=block.id, voter=v)
            for v in (1, 2, 3, 2, 4, 5, 6, 0)]  # duplicate voter 2 mid-run
    batch.extend(_vote_msg(v) for v in wave)
    # An equivocating vote for a rival block ends the run in both paths.
    batch.append(_vote_msg(
        NotarizationVote(round=1, block_id=rival.id, voter=3)))
    if name in ("icc", "banyan"):
        batch.extend(_vote_msg(
            FinalizationVote(round=1, block_id=block.id, voter=v))
            for v in (0, 1, 2, 3, 4, 5, 6))
        # A two-vote message (fast + notarization) takes the scalar path.
        pair = (FastVote(round=1, block_id=block.id, voter=5),
                NotarizationVote(round=1, block_id=block.id, voter=5))
        batch.append((5, VoteMessage(votes=pair, sender=5)))
    del genesis, probe
    return block, batch


class TestProtocolBatchTallies:
    @pytest.mark.parametrize("name", PROTOCOLS)
    def test_override_matches_base_replay(self, name):
        params = ProtocolParams(n=N, f=1, p=1, rank_delay=0.2)
        block, batch = _round_one_batch(name, params)
        factory = protocol_factory(name)

        batched = factory(0, params)
        batched_ctx = _FakeContext(0, N)
        batched.on_start(batched_ctx)
        batched.on_messages(batched_ctx, batch)

        scalar = factory(0, params)
        scalar_ctx = _FakeContext(0, N)
        scalar.on_start(scalar_ctx)
        # The base-class default replays through on_message one by one —
        # the reference semantics every override must reproduce.
        Protocol.on_messages(scalar, scalar_ctx, batch)

        assert batched_ctx.actions == scalar_ctx.actions
        assert _quorum_state(batched) == _quorum_state(scalar)
        # Non-vacuity: the wave crossed at least one quorum and the
        # duplicate/equivocation bookkeeping is populated.
        assert any(state[2] > 0 for state in _quorum_state(batched).values())
        assert any(state[1] for state in _quorum_state(batched).values())
        if name == "hotstuff":
            # HotStuff certifies via QCs; the tree is only marked at commit.
            assert block.id in batched._qc_by_block
        else:
            assert batched.tree.is_notarized(block.id)

    @pytest.mark.parametrize("name", PROTOCOLS)
    def test_vote_wave_split_across_batches(self, name):
        # A quorum crossing on the first vote of a later batch exercises
        # the already-fired ("armed") path of add_votes.
        params = ProtocolParams(n=N, f=1, p=1, rank_delay=0.2)
        block, batch = _round_one_batch(name, params)
        factory = protocol_factory(name)

        batched = factory(0, params)
        batched_ctx = _FakeContext(0, N)
        batched.on_start(batched_ctx)
        for start in range(0, len(batch), 3):
            batched.on_messages(batched_ctx, batch[start:start + 3])

        scalar = factory(0, params)
        scalar_ctx = _FakeContext(0, N)
        scalar.on_start(scalar_ctx)
        Protocol.on_messages(scalar, scalar_ctx, batch)

        assert batched_ctx.actions == scalar_ctx.actions
        assert _quorum_state(batched) == _quorum_state(scalar)


class TestQuorumTrackerAddVotes:
    def test_matches_scalar_add_vote_reference(self):
        rng = random.Random(7)
        blocks = ["b1", "b2"]
        sequence = [(rng.choice(blocks), rng.randrange(10))
                    for _ in range(200)]

        fired_batch: List[Any] = []
        batched = QuorumTracker(5, on_threshold=fired_batch.append)
        fired_scalar: List[Any] = []
        scalar = QuorumTracker(5, on_threshold=fired_scalar.append)

        for block_id, voter in sequence:
            scalar.add_vote(block_id, voter)
        # Batch side: group the same sequence into per-block runs of 7 and
        # re-feed remainders after each crossing, as the dispatch layer does.
        i = 0
        while i < len(sequence):
            block_id = sequence[i][0]
            run = []
            while i < len(sequence) and sequence[i][0] == block_id and len(run) < 7:
                run.append(sequence[i][1])
                i += 1
            while run:
                consumed = batched.add_votes(block_id, run)
                run = run[consumed:]

        assert fired_batch == fired_scalar
        for block_id in blocks:
            assert batched.voters(block_id) == scalar.voters(block_id)
        assert batched.equivocators() == scalar.equivocators()

    def test_stops_exactly_at_the_crossing(self):
        fired: List[Any] = []
        tracker = QuorumTracker(3, on_threshold=fired.append)
        consumed = tracker.add_votes("b", [10, 11, 12, 13, 14])
        assert consumed == 3
        assert fired == ["b"]
        assert tracker.count("b") == 3
        # The remainder never re-fires.
        assert tracker.add_votes("b", [13, 14]) == 2
        assert fired == ["b"]
        assert tracker.count("b") == 5

    def test_duplicates_are_skipped_and_never_fire(self):
        fired: List[Any] = []
        tracker = QuorumTracker(2, on_threshold=fired.append)
        consumed = tracker.add_votes("b", [1, 1, 1, 2, 3])
        # Crossing happens at voter 2 (the 4th element consumed).
        assert consumed == 4
        assert fired == ["b"]
        assert tracker.count("b") == 2

    def test_prefired_block_consumes_everything_silently(self):
        fired: List[Any] = []
        tracker = QuorumTracker(2, on_threshold=fired.append)
        tracker.add_vote("b", 1)
        tracker.add_vote("b", 2)
        assert fired == ["b"]
        assert tracker.add_votes("b", [3, 4, 5]) == 3
        assert fired == ["b"]
        assert tracker.count("b") == 5

    def test_equivocation_is_recorded_across_blocks(self):
        tracker = QuorumTracker(10)
        assert tracker.add_votes("b1", [1, 2]) == 2
        assert tracker.add_votes("b2", [2, 3]) == 2
        assert tracker.equivocators() == frozenset({2})


# --------------------------------------------------------------------- #
# run() vs step() at scale (n ≥ 64 with jitter and compute)
# --------------------------------------------------------------------- #


class TestRunVsStepAtScale:
    def test_n64_run_matches_single_stepping(self):
        n = 64

        def build() -> Simulation:
            params = ProtocolParams(n=n, f=10, p=10, rank_delay=0.2)
            protocols = create_replicas("banyan", params)
            network = NetworkConfig(
                latency=GeoLatency(four_global_datacenters(n), jitter=0.05),
                faults=FaultPlan.none(), seed=11, compute="crypto")
            return Simulation(protocols, network)

        batched = build()
        batched.run(until=1.2)
        assert batched.event_counts()["sbatch"] > 0

        stepped = build()
        stepped.start()
        while stepped.now <= 1.2 and stepped.step():
            pass

        assert _commit_digest(batched, n) == _commit_digest(stepped, n)
        assert batched.messages_sent == stepped.messages_sent
        assert batched.compute_stats() == stepped.compute_stats()
