"""Unit tests for the SMR harness: payload sources, mempool, ledger, metrics."""

from __future__ import annotations

import pytest

from repro.runtime.simulator import CommitRecord
from repro.smr.ledger import KeyValueLedger, Transaction, decode_transactions, encode_transactions
from repro.smr.mempool import Mempool, PayloadSource
from repro.smr.metrics import MetricsCollector, RunMetrics
from repro.types.blocks import Block


class TestPayloadSource:
    def test_logical_size_is_configured_size(self):
        source = PayloadSource(payload_size=400_000)
        payload, size = source.payload_for(1, 0)
        assert size == 400_000
        assert len(payload) < 100  # tag only, not materialised

    def test_payloads_are_unique_per_round_and_proposer(self):
        source = PayloadSource(payload_size=100)
        assert source.payload_for(1, 0)[0] != source.payload_for(1, 1)[0]
        assert source.payload_for(1, 0)[0] != source.payload_for(2, 0)[0]

    def test_materialized_payload_has_real_bytes(self):
        source = PayloadSource(payload_size=128, materialize=True, seed=1)
        payload, size = source.payload_for(1, 0)
        assert len(payload) == 128 and size == 128

    def test_with_size_returns_new_source(self):
        source = PayloadSource(payload_size=10)
        bigger = source.with_size(20)
        assert bigger.payload_size == 20
        assert source.payload_size == 10

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            PayloadSource(payload_size=-1)


class TestMempool:
    def test_fifo_order(self):
        pool = Mempool()
        pool.add(b"a")
        pool.add(b"b")
        assert pool.take(100) == [b"a", b"b"]

    def test_take_respects_byte_budget(self):
        pool = Mempool()
        pool.add_all([b"x" * 40, b"y" * 40, b"z" * 40])
        taken = pool.take(90)
        assert taken == [b"x" * 40, b"y" * 40]
        assert len(pool) == 1

    def test_single_oversized_transaction_not_taken(self):
        pool = Mempool()
        pool.add(b"x" * 100)
        assert pool.take(50) == []
        assert len(pool) == 1

    def test_capacity_limit(self):
        pool = Mempool(max_size=2)
        assert pool.add(b"a")
        assert pool.add(b"b")
        assert not pool.add(b"c")
        assert len(pool) == 2

    def test_peek_does_not_remove(self):
        pool = Mempool()
        pool.add_all([b"a", b"b"])
        assert pool.peek(2) == [b"a", b"b"]
        assert len(pool) == 2

    def test_clear(self):
        pool = Mempool()
        pool.add(b"a")
        pool.clear()
        assert len(pool) == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            Mempool(max_size=0)


class TestLedger:
    def test_encode_decode_roundtrip(self):
        transactions = [
            Transaction(op="SET", key="alice", value="10"),
            Transaction(op="DEL", key="bob"),
        ]
        assert decode_transactions(encode_transactions(transactions)) == transactions

    def test_apply_payload_updates_state(self):
        ledger = KeyValueLedger()
        ledger.apply_payload(encode_transactions([Transaction(op="SET", key="k", value="v")]))
        assert ledger.get("k") == "v"
        assert ledger.applied_transactions == 1

    def test_delete_removes_key(self):
        ledger = KeyValueLedger()
        ledger.apply_payload(encode_transactions([
            Transaction(op="SET", key="k", value="v"),
            Transaction(op="DEL", key="k"),
        ]))
        assert ledger.get("k") is None

    def test_garbage_payload_applies_nothing(self):
        ledger = KeyValueLedger()
        applied = ledger.apply_payload(b"\xff\xfe random bytes")
        assert applied == 0
        assert len(ledger) == 0

    def test_same_payload_sequence_gives_equal_state(self):
        payloads = [
            encode_transactions([Transaction(op="SET", key=f"k{i}", value=str(i))])
            for i in range(5)
        ]
        a, b = KeyValueLedger(), KeyValueLedger()
        for payload in payloads:
            a.apply_payload(payload)
            b.apply_payload(payload)
        assert a == b
        assert a.state_digest() == b.state_digest()

    def test_different_order_gives_different_digest_when_conflicting(self):
        set1 = encode_transactions([Transaction(op="SET", key="k", value="1")])
        set2 = encode_transactions([Transaction(op="SET", key="k", value="2")])
        a, b = KeyValueLedger(), KeyValueLedger()
        a.apply_payload(set1)
        a.apply_payload(set2)
        b.apply_payload(set2)
        b.apply_payload(set1)
        assert a.get("k") == "2" and b.get("k") == "1"
        assert a != b

    def test_invalid_transactions_rejected(self):
        with pytest.raises(ValueError):
            Transaction(op="NOPE", key="k")
        with pytest.raises(ValueError):
            Transaction(op="SET", key="k")
        with pytest.raises(ValueError):
            Transaction(op="SET", key="k\n", value="v")

    def test_snapshot_is_a_copy(self):
        ledger = KeyValueLedger()
        ledger.apply_payload(encode_transactions([Transaction(op="SET", key="a", value="1")]))
        snapshot = ledger.snapshot()
        snapshot["a"] = "tampered"
        assert ledger.get("a") == "1"


def _record(replica_id, proposer, round, commit_time, kind="slow", size=100):
    block = Block(round=round, proposer=proposer, rank=0, parent_id="parent",
                  payload=b"", payload_size=size)
    return CommitRecord(replica_id=replica_id, block=block, commit_time=commit_time,
                        finalization_kind=kind)


class TestMetrics:
    def test_latency_measured_at_proposer(self):
        collector = MetricsCollector(protocol="banyan", observer=0)
        block_record = _record(replica_id=1, proposer=1, round=1, commit_time=2.0, kind="fast")
        collector.on_commit(block_record)
        metrics = collector.finalize(
            duration=10.0,
            proposal_times={1: {block_record.block.id: 1.7}},
        )
        assert metrics.latency_samples[0].latency == pytest.approx(0.3)
        assert metrics.latency_samples[0].finalization_kind == "fast"

    def test_throughput_counts_observer_bytes_only(self):
        collector = MetricsCollector(protocol="icc", observer=0)
        collector.on_commit(_record(0, proposer=1, round=1, commit_time=1.0, size=500))
        collector.on_commit(_record(0, proposer=2, round=2, commit_time=2.0, size=500))
        collector.on_commit(_record(3, proposer=1, round=1, commit_time=1.0, size=500))
        metrics = collector.finalize(duration=10.0, proposal_times={})
        assert metrics.committed_blocks == 2
        assert metrics.throughput_bytes_per_s == pytest.approx(100.0)

    def test_block_intervals(self):
        collector = MetricsCollector(protocol="icc", observer=0)
        for i, t in enumerate([1.0, 1.5, 2.5]):
            collector.on_commit(_record(0, proposer=1, round=i + 1, commit_time=t))
        metrics = collector.finalize(duration=10.0, proposal_times={})
        assert metrics.block_intervals == [pytest.approx(0.5), pytest.approx(1.0)]
        assert metrics.mean_block_interval == pytest.approx(0.75)

    def test_warmup_commits_excluded(self):
        collector = MetricsCollector(protocol="icc", observer=0, warmup=5.0)
        collector.on_commit(_record(0, proposer=0, round=1, commit_time=1.0))
        collector.on_commit(_record(0, proposer=0, round=2, commit_time=6.0))
        metrics = collector.finalize(duration=10.0, proposal_times={})
        assert metrics.committed_blocks == 1

    def test_fast_path_ratio(self):
        collector = MetricsCollector(protocol="banyan", observer=0)
        collector.on_commit(_record(0, proposer=1, round=1, commit_time=1.0, kind="fast"))
        collector.on_commit(_record(0, proposer=1, round=2, commit_time=2.0, kind="slow"))
        metrics = collector.finalize(duration=10.0, proposal_times={})
        assert metrics.fast_path_ratio == pytest.approx(0.5)

    def test_summary_keys(self):
        metrics = RunMetrics(protocol="x", duration=1.0)
        summary = metrics.summary()
        assert {"mean_latency_s", "throughput_bytes_per_s", "fast_path_ratio"} <= set(summary)

    def test_empty_metrics_are_zero(self):
        metrics = RunMetrics(protocol="x", duration=0.0)
        assert metrics.mean_latency == 0.0
        assert metrics.throughput_bytes_per_s == 0.0
        assert metrics.latency_stddev == 0.0
        assert metrics.fast_path_ratio == 0.0

    def test_percentiles_ordering(self):
        metrics = RunMetrics(protocol="x", duration=1.0)
        from repro.smr.metrics import LatencySample
        for i in range(100):
            metrics.latency_samples.append(
                LatencySample(proposer=0, round=i, latency=float(i), finalization_kind="slow")
            )
        assert metrics.median_latency <= metrics.p95_latency <= metrics.p99_latency
