"""Tests for the fluid (aggregated-flow) workload mode.

The fluid model replaces per-transaction client simulation with one batched
injection event per (replica, tick), so million-user populations cost the
same number of workload events as eight users.  These tests pin:

* the flow-queue mechanics (inject, capacity shedding, budgeted drain with
  head-batch splitting, front requeue),
* the dependency-free Poisson sampler on both of its regimes,
* the weighted latency statistics the mode reports through
  :class:`repro.smr.metrics.WorkloadMetrics`,
* spec serialisation (fluid fields round-trip; exact-mode specs keep their
  serialised shape and hence their cache hashes), and
* cross-validation against the exact per-transaction model on an
  overlapping configuration — goodput and latency percentiles must agree
  within the bounds pinned here.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.stats import percentile, weighted_mean, weighted_percentile
from repro.eval.experiment import ExperimentConfig, run_experiment
from repro.protocols.base import ProtocolParams
from repro.smr.metrics import WorkloadMetrics
from repro.workload.fluid import (
    FlowQueue,
    FluidClientPool,
    FluidPayloadSource,
    poisson_sample,
)
from repro.workload.spec import WorkloadSpec


class TestPoissonSample:
    def test_zero_mean_returns_zero(self):
        assert poisson_sample(random.Random(1), 0.0) == 0

    def test_small_mean_matches_poisson_moments(self):
        rng = random.Random(7)
        draws = [poisson_sample(rng, 3.0) for _ in range(20_000)]
        mean = sum(draws) / len(draws)
        # Poisson(3): mean 3, variance 3.  20k draws put the sample mean
        # within ~0.04 of the true mean with overwhelming probability.
        assert mean == pytest.approx(3.0, abs=0.1)
        variance = sum((d - mean) ** 2 for d in draws) / len(draws)
        assert variance == pytest.approx(3.0, rel=0.1)
        assert all(isinstance(d, int) and d >= 0 for d in draws)

    def test_large_mean_uses_normal_approximation(self):
        rng = random.Random(11)
        draws = [poisson_sample(rng, 50_000.0) for _ in range(2_000)]
        mean = sum(draws) / len(draws)
        assert mean == pytest.approx(50_000.0, rel=0.01)
        assert all(isinstance(d, int) and d >= 0 for d in draws)


class TestFlowQueue:
    def test_inject_and_totals(self):
        queue = FlowQueue(tx_size=256, capacity=100)
        assert queue.inject(30, submit_mid=0.05) == 30
        assert queue.inject(40, submit_mid=0.15) == 40
        assert len(queue) == 70
        assert queue.total_bytes == 70 * 256

    def test_capacity_sheds_overflow(self):
        queue = FlowQueue(tx_size=256, capacity=50)
        assert queue.inject(30, submit_mid=0.05) == 30
        # Only 20 of the next 40 fit; the rest are shed (mempool backpressure).
        assert queue.inject(40, submit_mid=0.15) == 20
        assert len(queue) == 50

    def test_drain_splits_the_head_batch(self):
        queue = FlowQueue(tx_size=256, capacity=1000)
        queue.inject(10, submit_mid=0.05)
        queue.inject(10, submit_mid=0.15)
        # Budget for 12 transactions: the whole first batch plus 2 of the
        # second; the remaining 8 keep their submit time.
        groups, count, total_bytes = queue.drain(12 * 256)
        assert count == 12
        assert total_bytes == 12 * 256
        assert [(c, mid) for c, mid in groups] == [(10, 0.05), (2, 0.15)]
        assert len(queue) == 8
        groups, count, _ = queue.drain(100 * 256)
        assert [(c, mid) for c, mid in groups] == [(8, 0.15)]
        assert len(queue) == 0

    def test_requeue_restores_the_front_bypassing_capacity(self):
        queue = FlowQueue(tx_size=256, capacity=10)
        queue.inject(10, submit_mid=0.05)
        groups, count, _ = queue.drain(6 * 256)
        assert count == 6
        queue.inject(6, submit_mid=0.15)
        # Reclaiming a failed proposal's transactions must not lose them to
        # the capacity check, and they drain before newer arrivals.
        queue.requeue(groups)
        assert len(queue) == 16
        groups, count, _ = queue.drain(16 * 256)
        assert [(c, mid) for c, mid in groups] == [(6, 0.05), (4, 0.05), (6, 0.15)]


class TestWeightedStats:
    def test_weighted_percentile_matches_unweighted_at_unit_weights(self):
        rng = random.Random(3)
        values = [rng.random() for _ in range(101)]
        for q in (0, 25, 50, 90, 95, 99, 100):
            assert weighted_percentile(values, [1.0] * len(values), q) == \
                percentile(values, q)

    def test_weighted_percentile_counts_mass(self):
        # 99 transactions at 1s, one at 10s: the p50 is 1s, the p100 10s.
        values = [1.0, 10.0]
        weights = [99.0, 1.0]
        assert weighted_percentile(values, weights, 50) == 1.0
        assert weighted_percentile(values, weights, 99) == 1.0
        assert weighted_percentile(values, weights, 100) == 10.0

    def test_zero_weight_entries_are_ignored(self):
        assert weighted_percentile([5.0, 1.0], [0.0, 2.0], 50) == 1.0

    def test_unit_weight_equivalence_at_million_counts(self):
        # Fluid-mode scale: a million unit-weight samples.  The cumulative
        # rank accumulation must stay exact (integer partial sums below
        # 2**53), so the nearest-rank bucket can never flip vs the
        # unweighted path.
        rng = random.Random(11)
        values = [rng.random() for _ in range(1_000_000)]
        for q in (0, 10, 50, 90, 99, 99.9, 100):
            assert weighted_percentile(values, [1.0] * len(values), q) == \
                percentile(values, q)

    def test_uniform_fractional_weights_match_unweighted(self):
        # Uniform weights cancel out of the percentile whatever their
        # magnitude — but 0.1 is inexact in binary, so a naive running sum
        # drifts off the q/100 * total target over 1e5 additions; the
        # compensated accumulation must not let that flip a bucket.
        rng = random.Random(7)
        values = [rng.random() for _ in range(100_000)]
        for weight in (0.1, 1e6 + 0.1):
            for q in (25, 50, 75, 90, 99, 100):
                assert weighted_percentile(
                    values, [weight] * len(values), q) == \
                    percentile(values, q)

    def test_weighted_mean_is_exactly_rounded_at_scale(self):
        # 1e6-count weights: fsum keeps the mean independent of summation
        # order noise.
        values = [1.0 + i * 1e-9 for i in range(10_000)]
        weights = [1_000_000.0] * len(values)
        assert weighted_mean(values, weights) == \
            pytest.approx(sum(values) / len(values), rel=0, abs=1e-12)

    def test_weighted_mean(self):
        assert weighted_mean([1.0, 3.0], [3.0, 1.0]) == pytest.approx(1.5)
        assert weighted_mean([], []) == 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            weighted_percentile([1.0], [1.0, 2.0], 50)
        with pytest.raises(ValueError):
            weighted_mean([1.0], [])


class TestWorkloadMetricsWeights:
    def test_weighted_latency_statistics(self):
        metrics = WorkloadMetrics(duration=10.0, submitted=100, committed=100,
                                  latencies=[1.0, 10.0],
                                  latency_weights=[99.0, 1.0])
        assert metrics.p50_latency == 1.0
        assert metrics.mean_latency == pytest.approx((99.0 + 10.0) / 100.0)

    def test_to_dict_omits_weights_in_exact_mode(self):
        metrics = WorkloadMetrics(duration=10.0, latencies=[1.0])
        assert "latency_weights" not in metrics.to_dict()

    def test_round_trip_preserves_weights(self):
        metrics = WorkloadMetrics(duration=10.0, submitted=7, committed=5,
                                  latencies=[0.5, 0.7],
                                  latency_weights=[3.0, 2.0])
        rebuilt = WorkloadMetrics.from_dict(metrics.to_dict())
        assert rebuilt.latency_weights == [3.0, 2.0]
        assert rebuilt.p50_latency == metrics.p50_latency


class TestFluidSpec:
    def test_fluid_fields_round_trip(self):
        spec = WorkloadSpec(rate=1000.0, num_clients=1_000_000, fluid=True,
                            fluid_tick=0.2)
        data = spec.to_dict()
        assert data["fluid"] is True
        assert data["fluid_tick"] == 0.2
        assert WorkloadSpec.from_dict(data) == spec

    def test_exact_mode_keeps_its_serialised_shape(self):
        # Pre-existing exact-mode specs must hash identically across the
        # fluid-mode addition: the new keys only appear when selected.
        data = WorkloadSpec(rate=50.0).to_dict()
        assert "fluid" not in data
        assert "fluid_tick" not in data

    def test_fluid_requires_open_loop(self):
        with pytest.raises(ValueError, match="open-loop"):
            WorkloadSpec(mode="closed", fluid=True)

    def test_fluid_tick_must_be_positive(self):
        with pytest.raises(ValueError, match="fluid_tick"):
            WorkloadSpec(fluid=True, fluid_tick=0.0)

    def test_build_pool_dispatches_on_fluid(self):
        assert isinstance(WorkloadSpec(fluid=True).build_pool(), FluidClientPool)
        pool = WorkloadSpec().build_pool()
        assert not isinstance(pool, FluidClientPool)
        # Both pool kinds expose the payload-source seam the harness uses.
        assert pool.payload_source(4096) is not None


class TestFluidPayloadSource:
    def _pool(self, **kwargs) -> FluidClientPool:
        from repro.workload.arrivals import PoissonArrivals
        defaults = dict(arrivals=PoissonArrivals(100.0), num_clients=1000,
                        tx_size=256, seed=1)
        defaults.update(kwargs)
        return FluidClientPool(**defaults)

    def test_empty_flow_yields_empty_payload(self):
        pool = self._pool()
        source = pool.payload_source(max_block_bytes=4096)
        payload, size = source.payload_for(round=1, proposer=0)
        assert size == 0
        assert b"fluid:empty" in payload

    def test_drain_registers_and_commit_records_weighted_groups(self):
        pool = self._pool()
        pool.flow(0).inject(10, submit_mid=0.05)
        source = FluidPayloadSource(pool, max_block_bytes=4 * 256)
        payload, size = source.payload_for(round=1, proposer=0)
        assert size == 4 * 256
        assert len(pool.flow(0)) == 6

    def test_reclaim_requeues_uncommitted_rounds(self):
        pool = self._pool()
        pool.flow(0).inject(10, submit_mid=0.05)
        source = FluidPayloadSource(pool, max_block_bytes=10 * 256)
        source.payload_for(round=1, proposer=0)
        assert len(pool.flow(0)) == 0
        # While the chain has not yet committed past round 1, the proposal
        # is still in flight — nothing to reclaim (same gate as the exact
        # pool).
        assert pool.reclaim_uncommitted(proposer=0) == 0
        # Once a round-1 commit is observed without it, it is abandoned and
        # its transactions return to the flow front.
        pool._max_committed_round = 1
        assert pool.reclaim_uncommitted(proposer=0) == 10
        assert len(pool.flow(0)) == 10

    def test_block_budget_must_fit_one_transaction(self):
        with pytest.raises(ValueError):
            FluidPayloadSource(self._pool(tx_size=512), max_block_bytes=256)


class TestFluidCrossValidation:
    """Fluid and exact modes must agree on overlapping configurations.

    The bounds pin the approximation error: goodput within 10% and latency
    percentiles within 150 ms — the fluid model quantises submit times to
    tick midpoints (default tick 100 ms), so a systematic offset of up to
    ~tick/2 plus sampling noise is expected, and anything beyond these
    bounds indicates a real drift between the two client models.
    """

    def _run(self, fluid: bool):
        spec = WorkloadSpec(mode="open", arrival="poisson", rate=400.0,
                            num_clients=1000 if fluid else 16, tx_size=256,
                            seed=0, fluid=fluid)
        config = ExperimentConfig(protocol="banyan",
                                  params=ProtocolParams(n=4, f=1, p=1),
                                  workload=spec, duration=8.0, warmup=2.0,
                                  seed=3)
        return run_experiment(config).workload

    def test_fluid_matches_exact_within_bounds(self):
        exact = self._run(fluid=False)
        fluid = self._run(fluid=True)
        assert fluid.committed > 0 and exact.committed > 0
        assert fluid.goodput_tx_per_s == pytest.approx(
            exact.goodput_tx_per_s, rel=0.10)
        for attribute in ("mean_latency", "p50_latency", "p95_latency"):
            assert getattr(fluid, attribute) == pytest.approx(
                getattr(exact, attribute), abs=0.15), attribute

    def test_fluid_is_population_size_invariant_in_events(self):
        # The whole point of the mode: a 100x larger population must not
        # change the number of workload events (only the sampled arrival
        # counts, which follow the same rate).  Same seed, same rate ->
        # identical injection schedule regardless of num_clients.
        small = self._run_population(1_000)
        large = self._run_population(100_000)
        assert small.submitted == large.submitted
        assert small.committed == large.committed

    def _run_population(self, num_clients: int):
        spec = WorkloadSpec(mode="open", arrival="poisson", rate=200.0,
                            num_clients=num_clients, tx_size=256, seed=0,
                            fluid=True)
        config = ExperimentConfig(protocol="banyan",
                                  params=ProtocolParams(n=4, f=1, p=1),
                                  workload=spec, duration=4.0, warmup=1.0,
                                  seed=5)
        return run_experiment(config).workload
