"""Tests for the transport layer: dissemination strategies and their wiring.

Execution digests live in the golden regression corpus
(``tests/test_golden_corpus.py``), which pins every protocol × transport ×
compute cell plus the original pre-transport-refactor fingerprints; this
file covers the transports' unit behaviour, wiring, and serialization.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import pytest

from repro.eval.experiment import ExperimentConfig
from repro.eval.plan import ExperimentSpec
from repro.eval.scenarios import plan_uplink_contention
from repro.net.bandwidth import BandwidthModel
from repro.net.faults import FaultPlan
from repro.net.latency import ConstantLatency
from repro.net.transport import (
    ContendedUplinkTransport,
    DirectTransport,
    RelayTransport,
    build_transport,
)
from repro.protocols.base import Protocol, ProtocolParams
from repro.runtime.simulator import NetworkConfig, Simulation
from repro.runtime.trace import attach_network_trace


@dataclass(frozen=True)
class Packet:
    """Fixed-size test message."""

    wire_size: int = 100_000


def _models(n=4, latency_s=0.05, drop=0.0):
    latency = ConstantLatency(latency_s)
    bandwidth = BandwidthModel()
    faults = FaultPlan(drop_probability=drop)
    return latency, bandwidth, faults


# --------------------------------------------------------------------- #
# Serialization compatibility
# --------------------------------------------------------------------- #


class TestSpecCompatibility:
    def test_spec_content_hash_unchanged_by_transport_fields(self):
        # The cache key of a default-transport spec must be the exact hash
        # the pre-transport code produced, or every existing cache entry
        # and scenario hash would silently invalidate.
        spec = ExperimentSpec(
            protocol="banyan",
            params=ProtocolParams(n=4, f=1, p=1, rank_delay=0.6),
            topology="global4", duration=20.0, warmup=2.0, seed=0,
            cell="payload=0",
        )
        assert spec.content_hash() == (
            "2d8570f03596f09d8b1a2df02a4ac2c6cf365e41068248ec77624df9638c255b"
        )
        data = spec.to_dict()
        assert "transport" not in data
        assert "uplink_mbps" not in data
        assert "relays" not in data


class TestDirectTransportUnits:
    def test_unicast_decomposition_matches_models(self):
        latency, bandwidth, faults = _models()
        transport = DirectTransport(latency, bandwidth, faults)
        rng = random.Random(0)
        delivery = transport.unicast(0, 1, Packet(), 0.0, rng)
        assert delivery.receiver == 1
        assert delivery.transfer_delay == bandwidth.transfer_time(0, 1, 100_000)
        assert delivery.propagation_delay == 0.05
        assert delivery.queue_delay == 0.0
        assert delivery.deliver_at == pytest.approx(
            delivery.transfer_delay + delivery.propagation_delay)

    def test_broadcast_copies_depart_simultaneously(self):
        latency, bandwidth, faults = _models()
        transport = DirectTransport(latency, bandwidth, faults)
        rng = random.Random(0)
        deliveries = transport.broadcast(0, (0, 1, 2, 3), Packet(), 1.0, rng)
        assert [d.receiver for d in deliveries] == [0, 1, 2, 3]
        remote = [d for d in deliveries if d.receiver != 0]
        assert len({d.deliver_at for d in remote}) == 1  # no uplink queueing

    def test_dropped_unicast_returns_none(self):
        latency, bandwidth, _ = _models()
        transport = DirectTransport(latency, bandwidth,
                                    FaultPlan(drop_probability=0.999))
        assert transport.unicast(0, 1, Packet(), 0.0, random.Random(1)) is None


class TestContendedUplinkTransport:
    def test_broadcast_drains_fifo(self):
        latency, bandwidth, faults = _models()
        transport = ContendedUplinkTransport(latency, bandwidth, faults,
                                             uplink_bytes_per_s=1_000_000.0)
        rng = random.Random(0)
        deliveries = transport.broadcast(0, (0, 1, 2, 3), Packet(), 0.0, rng)
        remote = [d for d in deliveries if d.receiver != 0]
        # Constant propagation, so arrival order == serialization order, and
        # each successive copy waits exactly one more wire time.
        wire = bandwidth.per_message_overhead_s + 100_000 / 1_000_000.0
        queues = [d.queue_delay for d in remote]
        assert queues == pytest.approx([0.0, wire, 2 * wire])
        arrivals = [d.deliver_at for d in remote]
        assert arrivals == sorted(arrivals)
        assert arrivals[1] - arrivals[0] == pytest.approx(wire)

    def test_byte_conservation_on_uplink(self):
        # The NIC must stay busy exactly as long as it takes to push every
        # attempted byte: busy time == total bytes / rate (+ overheads).
        latency, bandwidth, faults = _models()
        rate = 2_000_000.0
        transport = ContendedUplinkTransport(latency, bandwidth, faults,
                                             uplink_bytes_per_s=rate)
        rng = random.Random(0)
        copies = 0
        for _ in range(3):
            copies += len([d for d in transport.broadcast(
                0, (0, 1, 2, 3, 4), Packet(), 0.0, rng) if d.receiver != 0])
        stats = transport.stats()
        assert stats["wire_bytes"] == copies * 100_000
        busy = transport._nic_free_at[0]
        expected = copies * (bandwidth.per_message_overhead_s + 100_000 / rate)
        assert busy == pytest.approx(expected)

    def test_self_delivery_bypasses_nic(self):
        latency, bandwidth, faults = _models()
        transport = ContendedUplinkTransport(latency, bandwidth, faults,
                                             uplink_bytes_per_s=1_000.0)
        rng = random.Random(0)
        deliveries = transport.broadcast(0, (0, 1), Packet(), 0.0, rng)
        self_copy = next(d for d in deliveries if d.receiver == 0)
        assert self_copy.queue_delay == 0.0
        assert self_copy.deliver_at < 1.0  # not behind the 100s uplink push

    def test_dropped_copies_do_not_occupy_uplink(self):
        latency, bandwidth, _ = _models()
        transport = ContendedUplinkTransport(latency, bandwidth,
                                             FaultPlan(drop_probability=0.999),
                                             uplink_bytes_per_s=1_000.0)
        assert transport.unicast(0, 1, Packet(), 0.0, random.Random(1)) is None
        assert transport._nic_free_at == {}
        assert transport.stats()["wire_bytes"] == 0

    def test_partition_hold_does_not_reserve_nic(self):
        # A copy held by a partition leaves the NIC immediately; the hold
        # happens in the network, so later sends to unpartitioned peers
        # must not queue behind a future release time.
        from repro.net.faults import PartitionPlan

        latency, bandwidth, _ = _models()
        faults = FaultPlan(partitions=PartitionPlan.single(0.0, 10.0, [0], [1]))
        transport = ContendedUplinkTransport(latency, bandwidth, faults,
                                             uplink_bytes_per_s=1_000_000.0)
        rng = random.Random(0)
        wire = bandwidth.per_message_overhead_s + 0.1
        held = transport.unicast(0, 1, Packet(), 0.0, rng)
        assert held.deliver_at == pytest.approx(10.0 + 0.05)  # released, then flies
        assert held.hold_delay == pytest.approx(10.0 - wire)
        clear = transport.unicast(0, 2, Packet(), 0.0, rng)
        assert clear.queue_delay == pytest.approx(wire)  # behind one wire time,
        assert clear.deliver_at < 1.0                    # not behind the release

    def test_invalid_uplink_rejected(self):
        latency, bandwidth, faults = _models()
        with pytest.raises(ValueError):
            ContendedUplinkTransport(latency, bandwidth, faults,
                                     uplink_bytes_per_s=0.0)

    def test_leader_fanout_cost_grows_with_n(self):
        # The last broadcast copy's queueing delay scales linearly with the
        # receiver count — the leader-bottleneck effect in one assertion.
        latency, bandwidth, faults = _models()
        last_queue = {}
        for n in (4, 8, 16):
            transport = ContendedUplinkTransport(latency, bandwidth, faults,
                                                 uplink_bytes_per_s=1_000_000.0)
            deliveries = transport.broadcast(0, tuple(range(n)), Packet(), 0.0,
                                             random.Random(0))
            last_queue[n] = max(d.queue_delay for d in deliveries)
        assert last_queue[4] < last_queue[8] < last_queue[16]
        wire = bandwidth.per_message_overhead_s + 0.1
        assert last_queue[16] == pytest.approx(14 * wire)


class TestRelayTransport:
    def test_broadcast_reaches_every_replica(self):
        latency, bandwidth, faults = _models()
        transport = RelayTransport(latency, bandwidth, faults, relays=2)
        rng = random.Random(0)
        deliveries = transport.broadcast(0, tuple(range(6)), Packet(), 0.0, rng)
        assert sorted(d.receiver for d in deliveries) == list(range(6))
        via = {d.receiver: d.via for d in deliveries}
        assert via[1] is None and via[2] is None  # the relays, served direct
        assert all(via[r] in (1, 2) for r in (3, 4, 5))

    def test_relayed_copies_pay_two_hops(self):
        latency, bandwidth, faults = _models()
        transport = RelayTransport(latency, bandwidth, faults, relays=1)
        rng = random.Random(0)
        deliveries = transport.broadcast(0, (0, 1, 2), Packet(), 0.0, rng)
        by_receiver = {d.receiver: d for d in deliveries}
        relay_arrival = by_receiver[1].deliver_at
        child = by_receiver[2]
        assert child.via == 1
        assert child.deliver_at == pytest.approx(
            relay_arrival + child.transfer_delay + child.propagation_delay)
        assert child.deliver_at > relay_arrival
        # The upstream leg is recorded as queueing, so the decomposition
        # still sums to the delivery time from the broadcast instant.
        assert child.queue_delay == pytest.approx(relay_arrival)

    def test_crashed_relay_not_selected(self):
        latency, bandwidth, _ = _models()
        faults = FaultPlan.with_crashed([1])
        transport = RelayTransport(latency, bandwidth, faults, relays=1)
        rng = random.Random(0)
        deliveries = transport.broadcast(0, (0, 1, 2, 3), Packet(), 0.0, rng)
        receivers = sorted(d.receiver for d in deliveries)
        assert receivers == [0, 2, 3]  # crashed replica misses out, rest served
        assert all(d.via in (None, 2) for d in deliveries)

    def test_lost_relay_copy_falls_back_to_direct(self):
        latency, bandwidth, faults = _models()
        transport = RelayTransport(latency, bandwidth, faults, relays=1)

        class DropFirst:
            """Drop exactly the first (relay) copy of the broadcast."""

            def __init__(self):
                self.calls = 0

            def is_crashed(self, replica_id, at_time):
                return False

            def should_drop(self, sender, receiver, at_time, rng):
                self.calls += 1
                return self.calls == 1

            def partition_release(self, sender, receiver, at_time):
                return None

        transport.faults = DropFirst()
        transport._trivial_faults = False
        transport._direct.faults = transport.faults
        transport._direct._trivial_faults = False
        deliveries = transport.broadcast(0, (0, 1, 2, 3), Packet(), 0.0,
                                         random.Random(0))
        receivers = sorted(d.receiver for d in deliveries)
        assert receivers == [0, 2, 3]  # relay 1 lost its copy, children survive
        assert all(d.via is None for d in deliveries)  # repair is sender-direct

    def test_lost_relay_fallback_respects_partition_hold(self):
        latency, bandwidth, faults = _models()
        transport = RelayTransport(latency, bandwidth, faults, relays=1)

        class DropRelayPartitionChild:
            """Drop the relay's copy; partition the sender from child 2."""

            def __init__(self):
                self.calls = 0

            def is_crashed(self, replica_id, at_time):
                return False

            def should_drop(self, sender, receiver, at_time, rng):
                self.calls += 1
                return self.calls == 1

            def partition_release(self, sender, receiver, at_time):
                return 7.0 if receiver == 2 else None

        transport.faults = DropRelayPartitionChild()
        transport._trivial_faults = False
        transport._direct.faults = transport.faults
        transport._direct._trivial_faults = False
        deliveries = transport.broadcast(0, (0, 1, 2), Packet(), 0.0,
                                         random.Random(0))
        child = next(d for d in deliveries if d.receiver == 2)
        assert child.via is None  # served by the sender-direct repair path
        assert child.hold_delay == pytest.approx(7.0)
        assert child.deliver_at == pytest.approx(
            7.0 + child.transfer_delay + child.propagation_delay)

    def test_wire_accounting_counts_each_link_once(self):
        latency, bandwidth, faults = _models()
        transport = RelayTransport(latency, bandwidth, faults, relays=1)
        transport.broadcast(0, (0, 1, 2, 3), Packet(), 0.0, random.Random(0))
        stats = transport.stats()
        # A full tree costs n-1 link transmissions, exactly like a direct
        # broadcast: sender→relay, relay→child, relay→child.  The shared
        # first hop is counted once; loopback is not on the wire.
        assert stats["wire_copies"] == 3
        assert stats["wire_bytes"] == 3 * 100_000
        # The tree's payoff: the sender itself transmitted only k=1 copies.
        assert stats["sender_copies"] == 1
        assert stats["sender_bytes"] == 100_000

    def test_invalid_relay_count_rejected(self):
        latency, bandwidth, faults = _models()
        with pytest.raises(ValueError):
            RelayTransport(latency, bandwidth, faults, relays=0)


class TestTransportRegistry:
    def test_build_by_name(self):
        latency, bandwidth, faults = _models()
        assert isinstance(build_transport("direct", latency, bandwidth, faults),
                          DirectTransport)
        contended = build_transport("contended", latency, bandwidth, faults,
                                    uplink_bytes_per_s=5.0)
        assert contended.uplink_bytes_per_s == 5.0
        relay = build_transport("relay", latency, bandwidth, faults, relays=3)
        assert relay.relays == 3

    def test_unknown_name_rejected_with_hint(self):
        latency, bandwidth, faults = _models()
        with pytest.raises(KeyError, match="contended"):
            build_transport("quic", latency, bandwidth, faults)

    def test_instance_adopted_and_reset(self):
        latency, bandwidth, faults = _models()
        instance = ContendedUplinkTransport(latency, bandwidth, faults,
                                            uplink_bytes_per_s=1_000.0)
        instance._nic_free_at[0] = 99.0
        simulation = Simulation(
            {0: _Silent(0, ProtocolParams(n=1, f=0, p=0))},
            NetworkConfig(transport=instance),
        )
        assert simulation.transport is instance
        assert instance._nic_free_at == {}  # reset on adoption


class _Silent(Protocol):
    name = "silent"

    def on_start(self, ctx):
        pass

    def on_message(self, ctx, sender, message):
        pass

    def on_timer(self, ctx, timer):
        pass


class _Flood(Protocol):
    """Replica 0 broadcasts one packet at start; receipts are recorded."""

    name = "flood"

    def __init__(self, replica_id, params):
        super().__init__(replica_id, params)
        self.received = []

    def on_start(self, ctx):
        if self.replica_id == 0:
            ctx.broadcast(Packet())

    def on_message(self, ctx, sender, message):
        self.received.append(ctx.now())

    def on_timer(self, ctx, timer):
        pass


def _flood_simulation(transport, n=4, **network_kwargs):
    params = ProtocolParams(n=n, f=0, p=0)
    protocols = {i: _Flood(i, params) for i in range(n)}
    network = NetworkConfig(latency=ConstantLatency(0.05), transport=transport,
                            **network_kwargs)
    return Simulation(protocols, network), protocols


class TestSimulationIntegration:
    def test_contended_broadcast_staggers_arrivals(self):
        direct_sim, direct = _flood_simulation("direct")
        direct_sim.run_until_idle()
        contended_sim, contended = _flood_simulation(
            "contended", uplink_bytes_per_s=1_000_000.0)
        contended_sim.run_until_idle()
        direct_arrivals = [direct[i].received[0] for i in (1, 2, 3)]
        contended_arrivals = [contended[i].received[0] for i in (1, 2, 3)]
        assert len(set(direct_arrivals)) == 1
        assert len(set(contended_arrivals)) == 3  # serialized, so staggered
        assert min(contended_arrivals) > min(direct_arrivals) - 1e-9

    def test_counters_are_transport_independent(self):
        for transport in ("direct", "contended", "relay"):
            simulation, _ = _flood_simulation(transport)
            simulation.run_until_idle()
            assert simulation.messages_sent == 4
            assert simulation.bytes_sent == 400_000
            assert simulation.messages_delivered == 4

    def test_transport_stats_exposed(self):
        simulation, _ = _flood_simulation("contended",
                                          uplink_bytes_per_s=1_000_000.0)
        simulation.run_until_idle()
        stats = simulation.transport_stats()
        assert stats["transport"] == "contended"
        assert stats["wire_bytes"] == 300_000  # three remote copies
        assert stats["queued_messages"] == 2

    def test_relay_transport_delivers_to_all(self):
        simulation, protocols = _flood_simulation("relay", relays=2)
        simulation.run_until_idle()
        assert all(p.received for p in protocols.values())

    def test_network_trace_records_queueing_separately(self):
        simulation, _ = _flood_simulation("contended",
                                          uplink_bytes_per_s=1_000_000.0)
        log = attach_network_trace(simulation)
        simulation.run_until_idle()
        sends = log.events(kind="net-send")
        assert len(sends) == 4
        queued = [e for e in sends if e.data["queue_s"] > 0]
        assert len(queued) == 2
        for event in sends:
            assert event.data["deliver_at"] == pytest.approx(
                event.time + event.data["hold_s"] + event.data["queue_s"]
                + event.data["transfer_s"] + event.data["propagation_s"])

    def test_network_trace_decomposition_sums_for_relayed_copies(self):
        simulation, _ = _flood_simulation("relay", relays=1)
        log = attach_network_trace(simulation)
        simulation.run_until_idle()
        sends = log.events(kind="net-send")
        assert any(event.data["via"] is not None for event in sends)
        for event in sends:
            assert event.data["deliver_at"] == pytest.approx(
                event.time + event.data["hold_s"] + event.data["queue_s"]
                + event.data["transfer_s"] + event.data["propagation_s"])

    def test_contended_partition_evaluated_at_nic_departure(self):
        # A window that opens after the send but before the copy clears the
        # NIC backlog must still hold the copy.
        from repro.net.faults import PartitionPlan

        latency, bandwidth, _ = _models()
        faults = FaultPlan(partitions=PartitionPlan.single(0.15, 5.0, [0], [1]))
        transport = ContendedUplinkTransport(latency, bandwidth, faults,
                                             uplink_bytes_per_s=1_000_000.0)
        rng = random.Random(0)
        wire = bandwidth.per_message_overhead_s + 0.1
        transport.unicast(0, 2, Packet(), 0.0, rng)  # backlog: NIC busy to ~0.1
        held = transport.unicast(0, 1, Packet(), 0.0, rng)
        # Departure at ~2*wire > 0.15 falls inside the window: held to 5.0.
        assert 2 * wire > 0.15
        assert held.hold_delay == pytest.approx(5.0 - 2 * wire)
        assert held.deliver_at == pytest.approx(5.0 + 0.05)

    def test_network_trace_records_drops(self):
        params = ProtocolParams(n=2, f=0, p=0)
        protocols = {i: _Flood(i, params) for i in range(2)}
        simulation = Simulation(protocols, NetworkConfig(
            latency=ConstantLatency(0.05),
            faults=FaultPlan(drop_probability=0.999), seed=1))
        log = attach_network_trace(simulation)
        simulation.run_until_idle()
        assert log.events(kind="net-drop")


class TestUplinkContentionScenario:
    def test_plan_shape(self):
        plan = plan_uplink_contention(replica_counts=(4, 7), seeds=2)
        assert len(plan.specs) == 2 * 2 * 2  # n × series × replications
        transports = {spec.transport for spec in plan.specs}
        assert transports == {"direct", "contended"}
        assert all(spec.axis == {"n": spec.params.n} for spec in plan.specs)

    def test_contention_gap_grows_with_n(self):
        from repro.eval.runner import run_plan
        from repro.eval.scenarios import figure_from_plan

        plan = plan_uplink_contention(replica_counts=(4, 10), payload_size=200_000,
                                      uplink_mbps=50.0, duration=6.0, warmup=1.0)
        figure = figure_from_plan(plan, run_plan(plan))
        ideal = {row["n"]: row for row in figure.series["banyan (ideal uplink)"]}
        contended = {row["n"]: row
                     for row in figure.series["banyan (contended uplink)"]}
        gap_small = contended[4]["mean_latency_ms"] - ideal[4]["mean_latency_ms"]
        gap_large = contended[10]["mean_latency_ms"] - ideal[10]["mean_latency_ms"]
        assert gap_small > 0
        assert gap_large > gap_small


class TestConfigSerialization:
    def test_config_round_trip_with_transport(self):
        config = ExperimentConfig(
            protocol="banyan", params=ProtocolParams(n=4, f=1, p=1),
            transport="contended", uplink_mbps=50.0,
        )
        data = config.to_dict()
        assert data["transport"] == "contended"
        assert data["uplink_mbps"] == 50.0
        rebuilt = ExperimentConfig.from_dict(data)
        assert (rebuilt.transport, rebuilt.uplink_mbps) == ("contended", 50.0)

    def test_unread_transport_knobs_do_not_change_the_hash(self):
        # A knob the selected transport never consults must not enter the
        # serialised form, or identical experiments would miss the cache.
        contended = ExperimentSpec(protocol="banyan",
                                   params=ProtocolParams(n=4, f=1, p=1),
                                   transport="contended", uplink_mbps=50.0)
        with_relays = ExperimentSpec(protocol="banyan",
                                     params=ProtocolParams(n=4, f=1, p=1),
                                     transport="contended", uplink_mbps=50.0,
                                     relays=5)
        assert with_relays.content_hash() == contended.content_hash()
        direct = ExperimentSpec(protocol="banyan",
                                params=ProtocolParams(n=4, f=1, p=1))
        direct_with_uplink = ExperimentSpec(protocol="banyan",
                                            params=ProtocolParams(n=4, f=1, p=1),
                                            uplink_mbps=50.0)
        assert direct_with_uplink.content_hash() == direct.content_hash()
        # An explicitly-passed default uplink is the same experiment as None.
        implicit = ExperimentSpec(protocol="banyan",
                                  params=ProtocolParams(n=4, f=1, p=1),
                                  transport="contended")
        explicit = ExperimentSpec(protocol="banyan",
                                  params=ProtocolParams(n=4, f=1, p=1),
                                  transport="contended", uplink_mbps=1000.0)
        assert explicit.content_hash() == implicit.content_hash()

    def test_default_config_omits_transport_keys(self):
        config = ExperimentConfig(protocol="banyan",
                                  params=ProtocolParams(n=4, f=1, p=1))
        data = config.to_dict()
        assert "transport" not in data and "uplink_mbps" not in data
        rebuilt = ExperimentConfig.from_dict(data)
        assert rebuilt.transport == "direct" and rebuilt.relays == 2

    def test_spec_round_trip_and_to_config(self):
        spec = ExperimentSpec(
            protocol="banyan", params=ProtocolParams(n=4, f=1, p=1),
            transport="relay", relays=4,
        )
        assert ExperimentSpec.from_dict(spec.to_dict()).to_dict() == spec.to_dict()
        config = spec.to_config()
        assert config.transport == "relay" and config.relays == 4
        assert ExperimentSpec.from_config(config).to_dict() == spec.to_dict()

    def test_spec_hash_distinguishes_transports(self):
        base = ExperimentSpec(protocol="banyan",
                              params=ProtocolParams(n=4, f=1, p=1))
        contended = ExperimentSpec(protocol="banyan",
                                   params=ProtocolParams(n=4, f=1, p=1),
                                   transport="contended", uplink_mbps=50.0)
        assert base.content_hash() != contended.content_hash()
