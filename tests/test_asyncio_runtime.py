"""Tests for the asyncio real-time runtime.

The same protocol objects that run under the discrete-event simulator are
driven here by an asyncio event loop with (scaled) wall-clock delays.  Runs
are kept very short and heavily time-compressed so the test suite stays fast.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.net.latency import ConstantLatency
from repro.protocols.base import ProtocolParams
from repro.protocols.registry import create_replicas
from repro.runtime.asyncio_runtime import AsyncioRuntime
from repro.runtime.simulator import NetworkConfig


def _run(coro):
    return asyncio.run(coro)


def _build_runtime(protocol: str, n: int = 4, duration: float = 4.0,
                   time_scale: float = 0.02):
    params = ProtocolParams(n=n, f=1, p=1, rank_delay=0.4, payload_size=500)
    replicas = create_replicas(protocol, params)
    network = NetworkConfig(latency=ConstantLatency(0.05), seed=1)
    runtime = AsyncioRuntime(replicas, network, time_scale=time_scale)
    return runtime, duration


class TestAsyncioRuntime:
    def test_banyan_commits_under_asyncio(self):
        runtime, duration = _build_runtime("banyan")
        _run(runtime.run(duration))
        commits = runtime.commits_for(0)
        assert len(commits) >= 2
        assert all(record.finalization_kind in ("fast", "slow") for record in commits)

    def test_icc_commits_under_asyncio(self):
        runtime, duration = _build_runtime("icc")
        _run(runtime.run(duration))
        assert len(runtime.commits_for(1)) >= 2

    def test_chains_consistent_across_replicas(self):
        runtime, duration = _build_runtime("banyan")
        _run(runtime.run(duration))
        chains = [
            [record.block.id for record in runtime.commits_for(replica_id)]
            for replica_id in runtime.replica_ids
        ]
        reference = max(chains, key=len)
        for chain in chains:
            assert chain == reference[: len(chain)]

    def test_commit_listener_invoked(self):
        runtime, duration = _build_runtime("banyan")
        seen = []
        runtime.add_commit_listener(seen.append)
        _run(runtime.run(duration))
        assert seen

    def test_invalid_time_scale_rejected(self):
        params = ProtocolParams(n=4, f=1, p=1)
        replicas = create_replicas("icc", params)
        with pytest.raises(ValueError):
            AsyncioRuntime(replicas, time_scale=0)

    def test_empty_replica_set_rejected(self):
        with pytest.raises(ValueError):
            AsyncioRuntime({})
