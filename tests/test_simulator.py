"""Unit tests for the discrete-event simulator and the replica context."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import pytest

from repro.net.faults import FaultPlan
from repro.net.latency import ConstantLatency
from repro.protocols.base import Protocol, ProtocolParams
from repro.runtime.context import ReplicaContext, Timer
from repro.runtime.simulator import NetworkConfig, Simulation
from repro.types.blocks import Block, genesis_block


@dataclass(frozen=True)
class Ping:
    """Minimal test message."""

    value: int
    wire_size: int = 10


class EchoProtocol(Protocol):
    """Test protocol: replica 0 broadcasts a ping; everyone records receipts."""

    name = "echo"

    def __init__(self, replica_id: int, params: ProtocolParams) -> None:
        super().__init__(replica_id, params)
        self.received: List[tuple] = []
        self.timer_fired: List[str] = []

    def on_start(self, ctx: ReplicaContext) -> None:
        if self.replica_id == 0:
            ctx.broadcast(Ping(value=1))
            ctx.set_timer(1.0, "tick", data="payload")

    def on_message(self, ctx: ReplicaContext, sender: int, message) -> None:
        self.received.append((sender, message.value, ctx.now()))

    def on_timer(self, ctx: ReplicaContext, timer: Timer) -> None:
        self.timer_fired.append(timer.name)


class CommitterProtocol(Protocol):
    """Test protocol that commits a block when it receives any message."""

    name = "committer"

    def on_start(self, ctx: ReplicaContext) -> None:
        if self.replica_id == 0:
            ctx.broadcast(Ping(value=7))

    def on_message(self, ctx: ReplicaContext, sender: int, message) -> None:
        block = Block(round=1, proposer=sender, rank=0, parent_id=genesis_block().id)
        ctx.commit([block], finalization_kind="fast")

    def on_timer(self, ctx: ReplicaContext, timer: Timer) -> None:
        pass


def _build(protocol_cls, n=3, latency=None, faults=None, seed=0):
    params = ProtocolParams(n=n, f=0, p=0)
    protocols = {i: protocol_cls(i, params) for i in range(n)}
    network = NetworkConfig(latency=latency or ConstantLatency(0.1), faults=faults or FaultPlan.none(), seed=seed)
    return Simulation(protocols, network), protocols


class TestSimulationBasics:
    def test_broadcast_reaches_every_replica_including_sender(self):
        sim, protocols = _build(EchoProtocol)
        sim.run(until=1.0)
        for replica_id, protocol in protocols.items():
            assert len(protocol.received) == 1
            assert protocol.received[0][0] == 0

    def test_delivery_time_reflects_latency_and_transfer(self):
        sim, protocols = _build(EchoProtocol, latency=ConstantLatency(0.1))
        sim.run(until=1.0)
        __, __, arrival = protocols[1].received[0]
        assert arrival == pytest.approx(0.1, abs=0.01)

    def test_self_delivery_is_faster_than_remote(self):
        sim, protocols = _build(EchoProtocol, latency=ConstantLatency(0.1))
        sim.run(until=1.0)
        self_arrival = protocols[0].received[0][2]
        remote_arrival = protocols[1].received[0][2]
        assert self_arrival < remote_arrival

    def test_timers_fire_at_requested_time(self):
        sim, protocols = _build(EchoProtocol)
        sim.run(until=0.5)
        assert protocols[0].timer_fired == []
        sim.run(until=2.0)
        assert protocols[0].timer_fired == ["tick"]

    def test_run_advances_clock_to_horizon(self):
        sim, _ = _build(EchoProtocol)
        sim.run(until=5.0)
        assert sim.now == pytest.approx(5.0)

    def test_run_until_idle_processes_everything(self):
        sim, protocols = _build(EchoProtocol)
        sim.run_until_idle()
        assert protocols[2].received

    def test_message_and_byte_counters(self):
        sim, _ = _build(EchoProtocol, n=4)
        sim.run(until=2.0)
        assert sim.messages_sent == 4  # broadcast to 4 replicas
        assert sim.messages_delivered == 4
        assert sim.bytes_sent == 40

    def test_determinism_under_fixed_seed(self):
        def commit_times(seed):
            sim, _ = _build(CommitterProtocol, n=4, seed=seed)
            sim.run(until=2.0)
            return [(r.replica_id, r.block.id, r.commit_time) for replica_id in sim.replica_ids
                    for r in sim.commits_for(replica_id)]

        assert commit_times(7) == commit_times(7)

    def test_empty_replica_set_rejected(self):
        with pytest.raises(ValueError):
            Simulation({}, NetworkConfig())

    def test_step_returns_false_when_idle(self):
        sim, _ = _build(EchoProtocol)
        sim.run_until_idle()
        assert sim.step() is False


class TestCommitRecording:
    def test_commit_records_collected_per_replica(self):
        sim, _ = _build(CommitterProtocol, n=3)
        sim.run(until=2.0)
        for replica_id in sim.replica_ids:
            records = sim.commits_for(replica_id)
            assert len(records) == 1
            assert records[0].finalization_kind == "fast"
            assert records[0].replica_id == replica_id

    def test_commit_listener_invoked(self):
        sim, _ = _build(CommitterProtocol, n=3)
        seen = []
        sim.add_commit_listener(lambda record: seen.append(record))
        sim.run(until=2.0)
        assert len(seen) == 3

    def test_all_commits_returns_copy(self):
        sim, _ = _build(CommitterProtocol, n=2)
        sim.run(until=2.0)
        commits = sim.all_commits()
        commits[0].clear()
        assert len(sim.commits_for(0)) == 1


class TestFaultsInSimulation:
    def test_crashed_replica_does_not_receive_or_act(self):
        faults = FaultPlan.with_crashed([2])
        sim, protocols = _build(EchoProtocol, n=3, faults=faults)
        sim.run(until=2.0)
        assert protocols[2].received == []
        assert protocols[1].received  # others still get the broadcast

    def test_crashed_sender_sends_nothing(self):
        faults = FaultPlan.with_crashed([0])
        sim, protocols = _build(EchoProtocol, n=3, faults=faults)
        sim.run(until=2.0)
        assert all(not p.received for p in protocols.values())

    def test_dropped_messages_are_counted(self):
        faults = FaultPlan(drop_probability=0.9)
        sim, _ = _build(EchoProtocol, n=5, faults=faults, seed=3)
        sim.run(until=2.0)
        assert sim.messages_dropped + sim.messages_delivered <= sim.messages_sent
        assert sim.messages_dropped > 0


class TestTimers:
    def test_cancelled_timer_does_not_fire(self):
        params = ProtocolParams(n=1, f=0, p=0)

        class Canceller(Protocol):
            name = "canceller"

            def __init__(self, replica_id, params):
                super().__init__(replica_id, params)
                self.fired = []

            def on_start(self, ctx):
                timer_id = ctx.set_timer(0.5, "a")
                ctx.set_timer(1.0, "b")
                ctx.cancel_timer(timer_id)

            def on_message(self, ctx, sender, message):
                pass

            def on_timer(self, ctx, timer):
                self.fired.append(timer.name)

        protocol = Canceller(0, params)
        sim = Simulation({0: protocol}, NetworkConfig())
        sim.run(until=2.0)
        assert protocol.fired == ["b"]

    def test_negative_timer_delay_rejected(self):
        params = ProtocolParams(n=1, f=0, p=0)

        class BadTimer(Protocol):
            name = "bad"

            def on_start(self, ctx):
                ctx.set_timer(-1.0, "nope")

            def on_message(self, ctx, sender, message):
                pass

            def on_timer(self, ctx, timer):
                pass

        sim = Simulation({0: BadTimer(0, params)}, NetworkConfig())
        with pytest.raises(ValueError):
            sim.start()
