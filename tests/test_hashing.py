"""Unit tests for the canonical encoding and hashing."""

from __future__ import annotations

import pytest

from repro.crypto.hashing import canonical_encode, digest, hash_hex
from repro.types.blocks import Block


class TestCanonicalEncode:
    def test_none(self):
        assert canonical_encode(None) == b"\x00N"

    def test_bools_are_distinct_from_ints(self):
        assert canonical_encode(True) != canonical_encode(1)
        assert canonical_encode(False) != canonical_encode(0)

    def test_int_and_str_do_not_collide(self):
        assert canonical_encode(1) != canonical_encode("1")

    def test_bytes_and_str_do_not_collide(self):
        assert canonical_encode(b"abc") != canonical_encode("abc")

    def test_tuple_vs_flat_values(self):
        assert canonical_encode((1, 2)) != canonical_encode((12,))

    def test_list_and_tuple_encode_identically(self):
        assert canonical_encode([1, 2, 3]) == canonical_encode((1, 2, 3))

    def test_set_is_order_independent(self):
        assert canonical_encode({3, 1, 2}) == canonical_encode({2, 3, 1})

    def test_frozenset_matches_set(self):
        assert canonical_encode(frozenset({1, 2})) == canonical_encode({1, 2})

    def test_dict_is_order_independent(self):
        assert canonical_encode({"a": 1, "b": 2}) == canonical_encode({"b": 2, "a": 1})

    def test_dataclass_encoding_includes_field_values(self):
        block_a = Block(round=1, proposer=0, rank=0, parent_id="x", payload=b"a")
        block_b = Block(round=1, proposer=0, rank=0, parent_id="x", payload=b"b")
        assert canonical_encode(block_a) != canonical_encode(block_b)

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            canonical_encode(object())

    def test_nested_structures(self):
        value = {"key": [(1, "two"), {"three": b"3"}]}
        assert canonical_encode(value) == canonical_encode(value)


class TestDigest:
    def test_digest_is_32_bytes(self):
        assert len(digest("hello")) == 32

    def test_digest_is_deterministic(self):
        assert digest(("a", 1, b"x")) == digest(("a", 1, b"x"))

    def test_digest_differs_for_different_values(self):
        assert digest("a") != digest("b")

    def test_hash_hex_is_hex_of_digest(self):
        assert bytes.fromhex(hash_hex("payload")) == digest("payload")

    def test_hash_hex_length(self):
        assert len(hash_hex(12345)) == 64
