"""Unit tests for keys, signatures, and aggregate multi-signatures."""

from __future__ import annotations

import pytest

from repro.crypto.aggregate import AggregateSignature, AggregationError
from repro.crypto.keys import KeyRegistry, generate_keypair
from repro.crypto.signatures import Signature, SignatureError, sign, verify


@pytest.fixture
def registry() -> KeyRegistry:
    return KeyRegistry.for_replicas(4)


class TestKeys:
    def test_keypair_is_deterministic(self):
        assert generate_keypair(3) == generate_keypair(3)

    def test_keypair_differs_per_replica(self):
        assert generate_keypair(0).private_key != generate_keypair(1).private_key

    def test_keypair_differs_per_seed(self):
        assert generate_keypair(0, b"a") != generate_keypair(0, b"b")

    def test_registry_contains_all_replicas(self, registry):
        assert len(registry) == 4
        assert registry.replica_ids() == [0, 1, 2, 3]

    def test_registry_membership(self, registry):
        assert 2 in registry
        assert 9 not in registry

    def test_registry_unknown_replica_raises(self, registry):
        with pytest.raises(KeyError):
            registry.keypair(17)

    def test_public_key_is_not_private_key(self, registry):
        assert registry.public_key(0) != registry.private_key(0)

    def test_registry_iteration_is_sorted(self, registry):
        assert list(registry) == [0, 1, 2, 3]


class TestSignatures:
    def test_sign_and_verify_roundtrip(self, registry):
        signature = sign(("vote", 1, "block"), 2, registry)
        assert verify(("vote", 1, "block"), signature, registry)

    def test_verify_fails_on_different_message(self, registry):
        signature = sign("message-a", 1, registry)
        assert not verify("message-b", signature, registry)

    def test_verify_fails_on_wrong_signer_claim(self, registry):
        signature = sign("msg", 1, registry)
        forged = Signature(signer=2, tag=signature.tag, message_digest=signature.message_digest)
        assert not verify("msg", forged, registry)

    def test_verify_fails_for_unknown_signer(self, registry):
        signature = Signature(signer=99, tag=b"x" * 32, message_digest=b"y" * 32)
        assert not verify("msg", signature, registry)

    def test_signing_unknown_replica_raises(self, registry):
        with pytest.raises(KeyError):
            sign("msg", 42, registry)

    def test_non_bytes_tag_rejected(self):
        with pytest.raises(SignatureError):
            Signature(signer=0, tag="not-bytes", message_digest=b"")

    def test_signatures_differ_per_signer(self, registry):
        assert sign("msg", 0, registry).tag != sign("msg", 1, registry).tag


class TestAggregateSignature:
    def _shares(self, registry, message, signers):
        return [sign(message, signer, registry) for signer in signers]

    def test_aggregate_collects_all_signers(self, registry):
        aggregate = AggregateSignature.from_shares(self._shares(registry, "m", [0, 1, 2]))
        assert aggregate.signers() == {0, 1, 2}
        assert len(aggregate) == 3

    def test_aggregate_verifies(self, registry):
        aggregate = AggregateSignature.from_shares(self._shares(registry, "m", [0, 1, 2]))
        assert aggregate.verify("m", registry)

    def test_aggregate_fails_verification_on_wrong_message(self, registry):
        aggregate = AggregateSignature.from_shares(self._shares(registry, "m", [0, 1]))
        assert not aggregate.verify("other", registry)

    def test_empty_aggregate_never_verifies(self, registry):
        assert not AggregateSignature().verify("m", registry)

    def test_mixed_messages_rejected(self, registry):
        shares = self._shares(registry, "m1", [0]) + self._shares(registry, "m2", [1])
        with pytest.raises(AggregationError):
            AggregateSignature.from_shares(shares)

    def test_duplicate_shares_are_deduplicated(self, registry):
        shares = self._shares(registry, "m", [0, 0, 1])
        aggregate = AggregateSignature.from_shares(shares)
        assert len(aggregate) == 2

    def test_merge_combines_signer_sets(self, registry):
        a = AggregateSignature.from_shares(self._shares(registry, "m", [0, 1]))
        b = AggregateSignature.from_shares(self._shares(registry, "m", [2, 3]))
        assert a.merge(b).signers() == {0, 1, 2, 3}

    def test_merge_of_different_messages_rejected(self, registry):
        a = AggregateSignature.from_shares(self._shares(registry, "m1", [0]))
        b = AggregateSignature.from_shares(self._shares(registry, "m2", [1]))
        with pytest.raises(AggregationError):
            a.merge(b)

    def test_with_share_adds_signer(self, registry):
        aggregate = AggregateSignature.from_shares(self._shares(registry, "m", [0]))
        extended = aggregate.with_share(sign("m", 1, registry))
        assert extended.signers() == {0, 1}

    def test_verify_threshold(self, registry):
        aggregate = AggregateSignature.from_shares(self._shares(registry, "m", [0, 1, 2]))
        assert aggregate.verify_threshold("m", registry, threshold=3)
        assert not aggregate.verify_threshold("m", registry, threshold=4)

    def test_order_independence(self, registry):
        shares = self._shares(registry, "m", [0, 1, 2])
        assert AggregateSignature.from_shares(shares) == AggregateSignature.from_shares(
            list(reversed(shares))
        )
