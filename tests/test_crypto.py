"""Unit tests for keys, signatures, and aggregate multi-signatures."""

from __future__ import annotations

import pytest

from repro.crypto.aggregate import AggregateSignature, AggregationError
from repro.crypto.keys import KeyRegistry, generate_keypair
from repro.crypto.signatures import Signature, SignatureError, sign, verify


@pytest.fixture
def registry() -> KeyRegistry:
    return KeyRegistry.for_replicas(4)


class TestKeys:
    def test_keypair_is_deterministic(self):
        assert generate_keypair(3) == generate_keypair(3)

    def test_keypair_differs_per_replica(self):
        assert generate_keypair(0).private_key != generate_keypair(1).private_key

    def test_keypair_differs_per_seed(self):
        assert generate_keypair(0, b"a") != generate_keypair(0, b"b")

    def test_registry_contains_all_replicas(self, registry):
        assert len(registry) == 4
        assert registry.replica_ids() == [0, 1, 2, 3]

    def test_registry_membership(self, registry):
        assert 2 in registry
        assert 9 not in registry

    def test_registry_unknown_replica_raises(self, registry):
        with pytest.raises(KeyError):
            registry.keypair(17)

    def test_public_key_is_not_private_key(self, registry):
        assert registry.public_key(0) != registry.private_key(0)

    def test_registry_iteration_is_sorted(self, registry):
        assert list(registry) == [0, 1, 2, 3]


class TestSignatures:
    def test_sign_and_verify_roundtrip(self, registry):
        signature = sign(("vote", 1, "block"), 2, registry)
        assert verify(("vote", 1, "block"), signature, registry)

    def test_verify_fails_on_different_message(self, registry):
        signature = sign("message-a", 1, registry)
        assert not verify("message-b", signature, registry)

    def test_verify_fails_on_wrong_signer_claim(self, registry):
        signature = sign("msg", 1, registry)
        forged = Signature(signer=2, tag=signature.tag, message_digest=signature.message_digest)
        assert not verify("msg", forged, registry)

    def test_verify_fails_for_unknown_signer(self, registry):
        signature = Signature(signer=99, tag=b"x" * 32, message_digest=b"y" * 32)
        assert not verify("msg", signature, registry)

    def test_signing_unknown_replica_raises(self, registry):
        with pytest.raises(KeyError):
            sign("msg", 42, registry)

    def test_non_bytes_tag_rejected(self):
        with pytest.raises(SignatureError):
            Signature(signer=0, tag="not-bytes", message_digest=b"")

    def test_signatures_differ_per_signer(self, registry):
        assert sign("msg", 0, registry).tag != sign("msg", 1, registry).tag


class TestAggregateSignature:
    def _shares(self, registry, message, signers):
        return [sign(message, signer, registry) for signer in signers]

    def test_aggregate_collects_all_signers(self, registry):
        aggregate = AggregateSignature.from_shares(self._shares(registry, "m", [0, 1, 2]))
        assert aggregate.signers() == {0, 1, 2}
        assert len(aggregate) == 3

    def test_aggregate_verifies(self, registry):
        aggregate = AggregateSignature.from_shares(self._shares(registry, "m", [0, 1, 2]))
        assert aggregate.verify("m", registry)

    def test_aggregate_fails_verification_on_wrong_message(self, registry):
        aggregate = AggregateSignature.from_shares(self._shares(registry, "m", [0, 1]))
        assert not aggregate.verify("other", registry)

    def test_empty_aggregate_never_verifies(self, registry):
        assert not AggregateSignature().verify("m", registry)

    def test_mixed_messages_rejected(self, registry):
        shares = self._shares(registry, "m1", [0]) + self._shares(registry, "m2", [1])
        with pytest.raises(AggregationError):
            AggregateSignature.from_shares(shares)

    def test_duplicate_shares_are_deduplicated(self, registry):
        shares = self._shares(registry, "m", [0, 0, 1])
        aggregate = AggregateSignature.from_shares(shares)
        assert len(aggregate) == 2

    def test_merge_combines_signer_sets(self, registry):
        a = AggregateSignature.from_shares(self._shares(registry, "m", [0, 1]))
        b = AggregateSignature.from_shares(self._shares(registry, "m", [2, 3]))
        assert a.merge(b).signers() == {0, 1, 2, 3}

    def test_merge_of_different_messages_rejected(self, registry):
        a = AggregateSignature.from_shares(self._shares(registry, "m1", [0]))
        b = AggregateSignature.from_shares(self._shares(registry, "m2", [1]))
        with pytest.raises(AggregationError):
            a.merge(b)

    def test_with_share_adds_signer(self, registry):
        aggregate = AggregateSignature.from_shares(self._shares(registry, "m", [0]))
        extended = aggregate.with_share(sign("m", 1, registry))
        assert extended.signers() == {0, 1}

    def test_verify_threshold(self, registry):
        aggregate = AggregateSignature.from_shares(self._shares(registry, "m", [0, 1, 2]))
        assert aggregate.verify_threshold("m", registry, threshold=3)
        assert not aggregate.verify_threshold("m", registry, threshold=4)

    def test_order_independence(self, registry):
        shares = self._shares(registry, "m", [0, 1, 2])
        assert AggregateSignature.from_shares(shares) == AggregateSignature.from_shares(
            list(reversed(shares))
        )


class TestVerificationMemo:
    """The batch/memoized fast path added for repeated certificate checks."""

    def _shares(self, registry, message, signers):
        return [sign(message, signer, registry) for signer in signers]

    def test_repeat_verification_hits_the_memo(self, registry):
        aggregate = AggregateSignature.from_shares(self._shares(registry, "m", [0, 1, 2]))
        assert registry.aggregate_verify_cache() == {}
        assert aggregate.verify("m", registry)
        assert len(registry.aggregate_verify_cache()) == 1
        # The repeat answers from the memo (and stays correct).
        assert aggregate.verify("m", registry)
        assert len(registry.aggregate_verify_cache()) == 1

    def test_memo_keyed_by_message_and_shares(self, registry):
        a = AggregateSignature.from_shares(self._shares(registry, "m", [0, 1]))
        b = AggregateSignature.from_shares(self._shares(registry, "m", [0, 1, 2]))
        assert a.verify("m", registry) and b.verify("m", registry)
        assert not a.verify("other", registry)
        assert len(registry.aggregate_verify_cache()) == 3

    def test_negative_results_are_memoized_correctly(self, registry):
        aggregate = AggregateSignature.from_shares(self._shares(registry, "m", [0, 1]))
        for _ in range(2):
            assert not aggregate.verify("other", registry)
            assert aggregate.verify("m", registry)

    def test_forged_share_fails_despite_memo(self, registry):
        good = self._shares(registry, "m", [0])
        forged = Signature(signer=1, tag=b"\x00" * 32,
                           message_digest=good[0].message_digest)
        aggregate = AggregateSignature(shares=((0, good[0]), (1, forged)))
        for _ in range(2):
            assert not aggregate.verify("m", registry)

    def test_registering_a_key_invalidates_the_memo(self, registry):
        stranger = generate_keypair(9, seed=b"elsewhere")
        share = sign("m", 9, KeyRegistry([stranger]))
        aggregate = AggregateSignature.from_shares([share])
        assert not aggregate.verify("m", registry)  # signer unknown here
        registry.register(stranger)
        assert aggregate.verify("m", registry)  # stale False must not stick

    def test_verify_many_matches_individual_verification(self, registry):
        from repro.crypto.aggregate import verify_many

        pairs = []
        for message in ("m1", "m2"):
            aggregate = AggregateSignature.from_shares(
                self._shares(registry, message, [0, 1, 2]))
            pairs.append((message, aggregate))
        pairs.append(("m1", pairs[1][1]))    # wrong message for that aggregate
        pairs.append(pairs[0])               # repeat of a valid pair
        pairs.append(("m3", AggregateSignature()))  # empty aggregate
        assert verify_many(pairs, registry) == [True, True, False, True, False]

    def test_verify_many_handles_unhashable_messages(self, registry):
        from repro.crypto.aggregate import verify_many

        message = ["list", "payload"]  # unhashable: falls back per occurrence
        aggregate = AggregateSignature.from_shares(self._shares(registry, message, [0, 1]))
        assert verify_many([(message, aggregate)] * 2, registry) == [True, True]
