"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from typing import Dict, List, Optional

import pytest

from repro.net.faults import FaultPlan
from repro.net.latency import ConstantLatency, LatencyModel
from repro.protocols.base import Protocol, ProtocolParams
from repro.protocols.registry import create_replicas
from repro.runtime.simulator import NetworkConfig, Simulation


def build_simulation(
    protocol: str,
    n: int = 4,
    f: int = 1,
    p: int = 1,
    rank_delay: float = 0.4,
    payload_size: int = 1_000,
    latency: Optional[LatencyModel] = None,
    faults: Optional[FaultPlan] = None,
    seed: int = 1,
    overrides: Optional[Dict[int, object]] = None,
    sign_messages: bool = False,
) -> Simulation:
    """Build a ready-to-run simulation of ``n`` replicas of ``protocol``."""
    params = ProtocolParams(
        n=n, f=f, p=p, rank_delay=rank_delay, payload_size=payload_size,
        sign_messages=sign_messages,
    )
    replicas = create_replicas(protocol, params, overrides=overrides)
    network = NetworkConfig(
        latency=latency or ConstantLatency(0.05),
        faults=faults or FaultPlan.none(),
        seed=seed,
    )
    return Simulation(replicas, network)


def committed_ids(simulation: Simulation, replica_id: int) -> List[str]:
    """Block ids committed by ``replica_id`` in commit order."""
    return [record.block.id for record in simulation.commits_for(replica_id)]


def assert_consistent_chains(simulation: Simulation) -> None:
    """Assert every pair of replicas committed consistent prefixes."""
    chains = [committed_ids(simulation, replica_id) for replica_id in simulation.replica_ids]
    reference = max(chains, key=len)
    for chain in chains:
        assert chain == reference[: len(chain)], "committed chains diverge"


def assert_no_conflicting_rounds(simulation: Simulation) -> None:
    """Assert no two replicas committed different blocks for the same round."""
    by_round: Dict[int, str] = {}
    for replica_id in simulation.replica_ids:
        for record in simulation.commits_for(replica_id):
            existing = by_round.get(record.block.round)
            if existing is None:
                by_round[record.block.round] = record.block.id
            else:
                assert existing == record.block.id, (
                    f"round {record.block.round} finalized two different blocks"
                )


@pytest.fixture
def small_params() -> ProtocolParams:
    """Default 4-replica parameters used across unit tests."""
    return ProtocolParams(n=4, f=1, p=1, rank_delay=0.4, payload_size=1_000)


@pytest.fixture
def n19_params() -> ProtocolParams:
    """The paper's 19-replica configuration with f=6, p=1."""
    return ProtocolParams(n=19, f=6, p=1, rank_delay=0.6, payload_size=10_000)
