"""The golden regression corpus: one digest per execution-semantics cell.

Every protocol × transport × compute combination runs a short deterministic
simulation whose commit schedule is digested and pinned.  Any change to rng
consumption order, arithmetic, event sequencing, transport timing, or
compute charging in *any* cell shows up as a digest mismatch here — this
file replaces the per-PR golden tests that used to be scattered across
``tests/test_transport.py`` (transport refactor) and the compute suite.

Two legacy cells are kept verbatim from the transport-refactor goldens
(they additionally cover random message loss and byte accounting, which the
grid cells do not): their digests were captured on the commit *before* the
transport layer existed, so they also pin DirectTransport's equivalence
with the original in-simulator pipeline.

Regenerating after an *intentional* semantics change: run each cell and
paste the new digests (see ``_execution_digest``), and say so in the
commit message — a digest edit without a deliberate semantics change is a
bug by definition.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.net.bandwidth import BandwidthModel
from repro.net.faults import FaultPlan
from repro.net.latency import GeoLatency
from repro.net.topology import four_global_datacenters
from repro.protocols.base import ProtocolParams
from repro.protocols.registry import create_replicas
from repro.runtime.simulator import NetworkConfig, Simulation

PROTOCOLS = ("banyan", "icc", "hotstuff", "streamlet")
TRANSPORTS = ("direct", "contended", "relay")
COMPUTES = ("zero", "crypto")

#: Pinned digests, keyed by (protocol, transport, compute).
GOLDEN_DIGESTS = {
    ("banyan", "direct", "zero"):
        "b9a734c4a624f1c7317a274fcf51bd2d872eac99cd07410bc456761104c841a5",
    ("banyan", "direct", "crypto"):
        "847cd3a435af938d387cb81ffd6660e8ccb19c64578e2abf1197fa767d2df6cf",
    ("banyan", "contended", "zero"):
        "555379c5c125832e4ee538d4c91a8fbcc841d2b981929bc06f07c12db7d4dc77",
    ("banyan", "contended", "crypto"):
        "eb754bb0f477d6ea0e80348fd22a45213328f62634ca0599e2201ba81436001e",
    ("banyan", "relay", "zero"):
        "a115e491e041fb29e247366e9a97c185d4c83bccd4b95daf0f4f5ff943ff1eb7",
    ("banyan", "relay", "crypto"):
        "865c26217203fc1b805b1b45325a0413bfad6ee5d56b3574ef686fe7f0f83af0",
    ("icc", "direct", "zero"):
        "150c0289c8dd5033a1a496dac23046bf461fef991453af44e9696103bd33ba05",
    ("icc", "direct", "crypto"):
        "57219ddddbf4f3ce86f9d253c9d689ebb13ae31e04c59871a7aee24e349c28cc",
    ("icc", "contended", "zero"):
        "50affe5e627054d2544414b832390dd87296bc963724581f99191426f5994b79",
    ("icc", "contended", "crypto"):
        "f225ae131d338d856ddae161ba6039ca7f5b2aed8c413430033b3c5f113d260c",
    ("icc", "relay", "zero"):
        "10b0288c6401cbdb6ff5cb7d242ef9d53e1d5c884a43d7d38d44876b09d71936",
    ("icc", "relay", "crypto"):
        "ad74c8c1b83d68d2e256f756fa4347be7fa67a0244b17538d4dbc2fcd8d880b2",
    ("hotstuff", "direct", "zero"):
        "fbeb7d08ae6553afbf1bbdb524b494a75d0f3b4938f1956ba5196e75cbafb56e",
    ("hotstuff", "direct", "crypto"):
        "b89181720e011e83dac581858247df53ff27e1cef60da086fc1364409b0b3519",
    ("hotstuff", "contended", "zero"):
        "3ea22fda3bc27073f313f065fce2ae467b60fb710bddae3d8ca7e96ee68497b2",
    ("hotstuff", "contended", "crypto"):
        "cf9fde338464dcaef67b36cf89dafa6883d7b3a62fea823dd1f05ad2f4a22578",
    ("hotstuff", "relay", "zero"):
        "ef8f358640443594ce041250196620eb10713aa5e06922145274c54d31962862",
    ("hotstuff", "relay", "crypto"):
        "25254845a68bd6d834144fb71242edc898b9892bc206ed5158a4299ce14a1e8f",
    ("streamlet", "direct", "zero"):
        "917781c76a80d2e57f7096956b812047dbe72ceb6f00d531625e8f3fe200f082",
    ("streamlet", "direct", "crypto"):
        "52bf3b3a4ffac1674540a62eca194ebd82a54402abc6b2d5ac5f2281364a6fc0",
    ("streamlet", "contended", "zero"):
        "4145b3521d0dcd375fc9736f875530551bf661632df09d1e7480c95e059321a5",
    ("streamlet", "contended", "crypto"):
        "283b7b9d2ef95ec19d8058ea9173e62eb443c32757d1a259334e846f309dbeac",
    ("streamlet", "relay", "zero"):
        "591e96a074a6251bd90f9ec586c3e6de5bf686787100148e34b25366ff16f94b",
    ("streamlet", "relay", "crypto"):
        "24c578650a3e684207210bd1f8ec377a136f27ed731cf7364117c4b718fae7e3",
}


def _commit_digest(simulation: Simulation) -> str:
    """Digest a finished simulation's full commit schedule."""
    commits = []
    for replica_id in simulation.replica_ids:
        for record in simulation.commits_for(replica_id):
            commits.append((
                record.replica_id, record.block.round, record.block.proposer,
                f"{record.commit_time:.9f}", record.finalization_kind,
                str(record.block.id),
            ))
    return hashlib.sha256(repr(commits).encode()).hexdigest()


def _execution_digest(protocol: str, transport: str, compute: str,
                      scheduler: str = "auto") -> str:
    """Run one corpus cell: n=4 on the global topology, 8 simulated seconds.

    ``scheduler`` forces an event-queue backend; both backends replay the
    same ``(time, seq)`` total order, so every cell's digest must be
    invariant to it (pinned by ``tests/test_scheduler.py``).
    """
    params = ProtocolParams(n=4, f=1, p=1, rank_delay=0.6, payload_size=50_000)
    topology = four_global_datacenters(4)
    network = NetworkConfig(
        latency=GeoLatency(topology),
        bandwidth=BandwidthModel(topology=topology),
        seed=7,
        transport=transport,
        # 50 Mbit/s: low enough that broadcasts genuinely queue on the NIC.
        uplink_bytes_per_s=6_250_000.0 if transport == "contended" else None,
        relays=2,
        compute=compute,
        scheduler=scheduler,
    )
    simulation = Simulation(create_replicas(protocol, params), network)
    simulation.run(until=8.0)
    return _commit_digest(simulation)


@pytest.mark.parametrize("compute", COMPUTES)
@pytest.mark.parametrize("transport", TRANSPORTS)
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_execution_digest_is_pinned(protocol, transport, compute):
    assert _execution_digest(protocol, transport, compute) == \
        GOLDEN_DIGESTS[(protocol, transport, compute)], (
            f"{protocol}/{transport}/{compute} execution changed — if this "
            f"is an intentional semantics change, regenerate the corpus "
            f"digests and say so in the commit message"
        )


def test_corpus_covers_the_full_grid():
    assert set(GOLDEN_DIGESTS) == {
        (protocol, transport, compute)
        for protocol in PROTOCOLS
        for transport in TRANSPORTS
        for compute in COMPUTES
    }
    # Distinct cells describe distinct executions.
    assert len(set(GOLDEN_DIGESTS.values())) == len(GOLDEN_DIGESTS)


class TestLegacyPreRefactorGoldens:
    """The two transport-refactor goldens, kept for their extra coverage.

    Captured before the transport layer existed; they additionally pin
    random-loss rng consumption and the byte/message accounting.
    """

    def _fingerprint(self, protocol, faults, seed, latency_kind, duration):
        params = ProtocolParams(n=4, f=1, p=1, rank_delay=0.6, payload_size=50_000)
        topology = four_global_datacenters(4)
        if latency_kind == "geo":
            latency = GeoLatency(topology)
            bandwidth = BandwidthModel(topology=topology)
        else:
            from repro.net.latency import ConstantLatency

            latency = ConstantLatency(0.05)
            bandwidth = BandwidthModel()
        simulation = Simulation(
            create_replicas(protocol, params),
            NetworkConfig(latency=latency, bandwidth=bandwidth, faults=faults,
                          seed=seed),
        )
        simulation.run(until=duration)
        return _commit_digest(simulation), simulation

    def test_banyan_with_drops_and_geo_latency(self):
        digest, simulation = self._fingerprint(
            "banyan", FaultPlan(drop_probability=0.02), seed=3,
            latency_kind="geo", duration=12.0,
        )
        assert digest == ("ceedd047eb2937151dcb633359b0e1fc"
                          "beff1d582b231e8427a7d1cc90b7a8b8")
        assert simulation.bytes_sent == 54_428_736
        assert simulation.messages_sent == 5_208
        assert simulation.messages_delivered == 5_054
        assert simulation.messages_dropped == 106

    def test_icc_faultless_constant_latency(self):
        digest, simulation = self._fingerprint(
            "icc", FaultPlan.none(), seed=0,
            latency_kind="const", duration=10.0,
        )
        assert digest == ("7ab2125db439432d731e3dab43d192fe"
                          "144fe383f697afa041d7a98be6d74a73")
        assert simulation.bytes_sent == 81_584_448
