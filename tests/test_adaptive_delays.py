"""Tests for adaptive delay adjustment (Remark 4.2)."""

from __future__ import annotations

import pytest

from repro.core.adaptive import AdaptiveDelayEstimator
from repro.net.faults import FaultPlan
from repro.net.latency import ConstantLatency, UniformLatency
from tests.conftest import assert_consistent_chains, build_simulation


class TestAdaptiveDelayEstimator:
    def test_initial_value_clamped(self):
        estimator = AdaptiveDelayEstimator(initial_delay=100.0, max_delay=5.0)
        assert estimator.current_delay == 5.0

    def test_estimate_tracks_observations_with_headroom(self):
        estimator = AdaptiveDelayEstimator(initial_delay=3.0, headroom=1.5, min_delay=0.01)
        for _ in range(20):
            estimator.observe_round(0.1)
        assert estimator.current_delay == pytest.approx(0.15)
        assert estimator.observations == 20

    def test_estimate_uses_high_percentile(self):
        estimator = AdaptiveDelayEstimator(initial_delay=1.0, percentile=90.0, headroom=1.0)
        for duration in [0.1] * 9 + [0.5]:
            estimator.observe_round(duration)
        # The 90th percentile of the window is the 0.1 bucket's top; the lone
        # 0.5 outlier only matters at the 100th percentile.
        assert estimator.current_delay <= 0.5
        assert estimator.current_delay >= 0.1

    def test_timeout_backs_off_multiplicatively(self):
        estimator = AdaptiveDelayEstimator(initial_delay=0.2, backoff=2.0, max_delay=1.0)
        estimator.observe_timeout()
        assert estimator.current_delay == pytest.approx(0.4)
        estimator.observe_timeout()
        estimator.observe_timeout()
        assert estimator.current_delay == pytest.approx(1.0)  # clamped
        assert estimator.timeouts == 3

    def test_recovers_after_backoff(self):
        estimator = AdaptiveDelayEstimator(initial_delay=0.2, window=8)
        estimator.observe_timeout()
        for _ in range(8):
            estimator.observe_round(0.05)
        assert estimator.current_delay < 0.2

    def test_delays_scale_with_rank(self):
        estimator = AdaptiveDelayEstimator(initial_delay=0.3)
        assert estimator.proposal_delay(0) == 0.0
        assert estimator.proposal_delay(2) == pytest.approx(0.6)
        assert estimator.notarization_delay(1) == pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveDelayEstimator(initial_delay=0.0)
        with pytest.raises(ValueError):
            AdaptiveDelayEstimator(initial_delay=1.0, min_delay=2.0, max_delay=1.0)
        with pytest.raises(ValueError):
            AdaptiveDelayEstimator(initial_delay=1.0, headroom=0.5)
        with pytest.raises(ValueError):
            AdaptiveDelayEstimator(initial_delay=1.0, percentile=0)
        estimator = AdaptiveDelayEstimator(initial_delay=1.0)
        with pytest.raises(ValueError):
            estimator.observe_round(-1.0)


class TestAdaptiveProtocolIntegration:
    def _mean_proposer_latency(self, sim):
        latencies = []
        for replica_id in sim.replica_ids:
            protocol = sim.protocol(replica_id)
            commits = {r.block.id: r.commit_time for r in sim.commits_for(replica_id)}
            latencies.extend(
                commits[bid] - t for bid, t in protocol.proposal_times.items() if bid in commits
            )
        return sum(latencies) / len(latencies)

    def _build(self, protocol, adaptive, rank_delay, **kwargs):
        from repro.protocols.base import ProtocolParams
        from repro.protocols.registry import create_replicas
        from repro.runtime.simulator import NetworkConfig, Simulation

        params = ProtocolParams(n=4, f=1, p=1, rank_delay=rank_delay, payload_size=1_000,
                                adaptive_delays=adaptive)
        replicas = create_replicas(protocol, params)
        network = NetworkConfig(latency=kwargs.get("latency", ConstantLatency(0.05)),
                                faults=kwargs.get("faults", FaultPlan.none()), seed=1)
        return Simulation(replicas, network)

    def test_banyan_still_commits_with_adaptive_delays(self):
        sim = self._build("banyan", adaptive=True, rank_delay=0.4)
        sim.run(until=10.0)
        assert_consistent_chains(sim)
        assert len(sim.commits_for(0)) > 10
        estimator = sim.protocol(0).delay_estimator
        assert estimator is not None and estimator.observations > 5

    def test_estimator_disabled_by_default(self):
        sim = self._build("icc", adaptive=False, rank_delay=0.4)
        sim.run(until=3.0)
        assert sim.protocol(0).delay_estimator is None

    def test_adaptive_delays_speed_up_crash_recovery(self):
        """With a crashed leader and a grossly over-estimated Δ, the adaptive
        variant shrinks the rank-1 fallback delay and commits more blocks."""
        faults = FaultPlan.with_crashed([2])

        def blocks(adaptive):
            sim = self._build("icc", adaptive=adaptive, rank_delay=3.0, faults=faults,
                              latency=ConstantLatency(0.05))
            sim.run(until=40.0)
            assert_consistent_chains(sim)
            return len(sim.commits_for(0))

        assert blocks(adaptive=True) > blocks(adaptive=False)

    def test_adaptive_fault_free_latency_not_worse(self):
        fixed = self._build("banyan", adaptive=False, rank_delay=0.4)
        fixed.run(until=10.0)
        adaptive = self._build("banyan", adaptive=True, rank_delay=0.4)
        adaptive.run(until=10.0)
        assert self._mean_proposer_latency(adaptive) <= self._mean_proposer_latency(fixed) * 1.1

    def test_adaptive_delays_with_jitter_remain_single_leader_mostly(self):
        sim = self._build("banyan", adaptive=True, rank_delay=0.4,
                          latency=UniformLatency(0.02, 0.08))
        sim.run(until=10.0)
        assert_consistent_chains(sim)
        # The estimate should settle well above the maximum network delay, so
        # fault-free rounds still finalize the leader's (rank-0) block.
        rank0 = sum(1 for r in sim.commits_for(0) if r.block.rank == 0)
        assert rank0 / len(sim.commits_for(0)) > 0.9
