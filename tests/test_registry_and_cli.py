"""Tests for the protocol registry and the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.protocols.base import Protocol, ProtocolParams
from repro.protocols.registry import (
    available_protocols,
    create_replicas,
    protocol_factory,
    register_protocol,
)


class TestRegistry:
    def test_all_four_protocols_available(self):
        assert set(available_protocols()) >= {"banyan", "icc", "hotstuff", "streamlet"}

    def test_factory_lookup(self):
        from repro.core.banyan import BanyanReplica

        assert protocol_factory("banyan") is BanyanReplica

    def test_unknown_protocol_raises_with_hint(self):
        with pytest.raises(KeyError) as excinfo:
            protocol_factory("nope")
        assert "available" in str(excinfo.value)

    def test_create_replicas_builds_full_set(self):
        params = ProtocolParams(n=4, f=1, p=1)
        replicas = create_replicas("banyan", params)
        assert sorted(replicas) == [0, 1, 2, 3]
        assert all(r.params is params for r in replicas.values())

    def test_create_replicas_shares_one_beacon(self):
        params = ProtocolParams(n=4, f=1)
        replicas = create_replicas("icc", params)
        beacons = {id(r.beacon) for r in replicas.values()}
        assert len(beacons) == 1

    def test_overrides_plant_custom_replicas(self):
        class Lazy(Protocol):
            name = "lazy"

            def __init__(self, replica_id, params, **_):
                super().__init__(replica_id, params)

            def on_start(self, ctx):
                pass

            def on_message(self, ctx, sender, message):
                pass

            def on_timer(self, ctx, timer):
                pass

        params = ProtocolParams(n=4, f=1)
        replicas = create_replicas("icc", params, overrides={2: Lazy})
        assert replicas[2].name == "lazy"
        assert replicas[1].name == "icc"

    def test_sign_messages_creates_registry(self):
        params = ProtocolParams(n=4, f=1, sign_messages=True)
        replicas = create_replicas("icc", params)
        assert all(r.registry is not None for r in replicas.values())
        registries = {id(r.registry) for r in replicas.values()}
        assert len(registries) == 1

    def test_register_additional_protocol(self):
        from repro.protocols.icc import ICCReplica

        register_protocol("icc-alias", ICCReplica)
        assert "icc-alias" in available_protocols()
        assert protocol_factory("icc-alias") is ICCReplica


class TestCLI:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "banyan" in out and "6a" in out

    def test_table1_command(self, capsys):
        assert main(["table1", "--f", "6", "--p", "1"]) == 0
        out = capsys.readouterr().out
        assert "Banyan" in out and "2δ" in out

    def test_run_command_small(self, capsys):
        assert main([
            "run", "--protocol", "banyan", "--n", "4", "--f", "1", "--p", "1",
            "--payload", "10000", "--duration", "6", "--topology", "global4",
        ]) == 0
        out = capsys.readouterr().out
        assert "mean_latency_ms" in out

    def test_figure_command_quick(self, capsys):
        assert main(["figure", "6b", "--duration", "6"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6b" in out and "banyan (p=1)" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "9z"])

    def test_figure_command_parallel_replicated_cached(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        argv = ["figure", "6b", "--duration", "5", "--jobs", "2", "--seeds", "2",
                "--cache-dir", cache_dir]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert "mean_latency_ms_ci95" in first.out
        assert "(cached)" not in first.err

        # Same invocation again: every cell is served from the cache.
        assert main(argv) == 0
        second = capsys.readouterr()
        assert second.out == first.out
        assert second.err.count("(cached)") == second.err.count("[")

        # Serial execution renders the identical report (modulo progress).
        assert main(["figure", "6b", "--duration", "5", "--jobs", "1",
                     "--seeds", "2", "--no-cache"]) == 0
        assert capsys.readouterr().out == first.out

    def test_run_profile_out_dumps_pstats(self, capsys, tmp_path):
        import pstats

        path = str(tmp_path / "run.pstats")
        # --profile-out implies --profile: one replication under cProfile,
        # raw stats dumped to the given path for offline analysis.
        assert main([
            "run", "--protocol", "banyan", "--n", "4", "--f", "1", "--p", "1",
            "--payload", "10000", "--duration", "4", "--topology", "global4",
            "--profile-out", path,
        ]) == 0
        captured = capsys.readouterr()
        assert "mean_latency_ms" in captured.out
        assert "scheduled events by kind" in captured.err
        stats = pstats.Stats(path)
        assert stats.stats  # non-empty profile

    def test_run_command_with_seeds(self, capsys):
        assert main([
            "run", "--protocol", "banyan", "--n", "4", "--f", "1", "--p", "1",
            "--payload", "10000", "--duration", "5", "--seeds", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "mean_latency_ms_ci95" in out

    def test_workload_command_accepts_runner_flags(self, capsys):
        assert main([
            "workload", "saturation", "--rates", "20", "--duration", "5",
            "--jobs", "2", "--seeds", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "goodput_tx_per_s_ci95" in out

    def test_run_command_with_contended_transport(self, capsys):
        assert main([
            "run", "--protocol", "banyan", "--n", "4", "--f", "1", "--p", "1",
            "--payload", "100000", "--duration", "5",
            "--transport", "contended", "--uplink-mbps", "20",
        ]) == 0
        out = capsys.readouterr().out
        assert "mean_latency_ms" in out

    def test_run_command_rejects_uplink_without_contended(self, capsys):
        assert main([
            "run", "--n", "4", "--f", "1", "--duration", "5",
            "--uplink-mbps", "20",
        ]) == 2
        assert "--transport contended" in capsys.readouterr().err

    def test_run_command_rejects_relays_without_relay_transport(self, capsys):
        assert main([
            "run", "--n", "4", "--f", "1", "--duration", "5", "--relays", "3",
        ]) == 2
        assert "--transport relay" in capsys.readouterr().err

    def test_run_command_rejects_unknown_transport(self):
        with pytest.raises(SystemExit):
            main(["run", "--n", "4", "--f", "1", "--transport", "quic"])

    def test_run_command_with_crypto_compute(self, capsys):
        assert main([
            "run", "--protocol", "banyan", "--n", "4", "--f", "1", "--p", "1",
            "--payload", "10000", "--duration", "5",
            "--compute", "crypto", "--compute-scale", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "busy_frac" in out

    def test_run_command_rejects_scale_without_crypto_compute(self, capsys):
        assert main([
            "run", "--n", "4", "--f", "1", "--duration", "5",
            "--compute-scale", "2",
        ]) == 2
        assert "--compute crypto" in capsys.readouterr().err

    def test_run_command_rejects_unknown_compute(self):
        with pytest.raises(SystemExit):
            main(["run", "--n", "4", "--f", "1", "--compute", "gpu"])

    def test_figure_crypto_listed_and_runs_tiny(self, capsys):
        assert main(["list"]) == 0
        assert "crypto" in capsys.readouterr().out
        assert main(["figure", "crypto", "--duration", "2",
                     "--warmup", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "banyan (free compute)" in out
        assert "banyan (crypto compute)" in out
        assert "busy_frac" in out

    def test_figure_uplink_listed_and_runs_tiny(self, capsys):
        assert main(["list"]) == 0
        assert "uplink" in capsys.readouterr().out
        assert main(["figure", "uplink", "--duration", "2",
                     "--warmup", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "banyan (contended uplink)" in out
        assert "banyan (ideal uplink)" in out
