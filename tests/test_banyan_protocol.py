"""Integration tests for the Banyan protocol (the paper's contribution).

These exercise the dual-mode behaviour end to end: fast-path finalization in
good rounds, graceful fallback to the ICC slow path under crashes and
stragglers, and safety under message loss and an equivocating leader.
"""

from __future__ import annotations

import pytest

from repro.byzantine.behaviors import DelayedReplica, make_equivocating_banyan
from repro.net.faults import FaultPlan
from repro.net.latency import ConstantLatency, UniformLatency
from repro.protocols.base import ProtocolParams
from repro.protocols.registry import create_replicas
from repro.runtime.simulator import NetworkConfig, Simulation
from tests.conftest import assert_consistent_chains, assert_no_conflicting_rounds, build_simulation


class TestBanyanFaultFree:
    def test_all_replicas_commit_and_agree(self):
        sim = build_simulation("banyan", n=4, f=1, p=1)
        sim.run(until=10.0)
        assert_consistent_chains(sim)
        assert_no_conflicting_rounds(sim)
        assert len(sim.commits_for(0)) > 10

    def test_fast_path_used_in_good_rounds(self):
        sim = build_simulation("banyan", n=4, f=1, p=1)
        sim.run(until=10.0)
        kinds = [r.finalization_kind for r in sim.commits_for(0)]
        assert kinds.count("fast") / len(kinds) > 0.9

    def test_fast_termination_latency_is_two_deltas(self):
        """Theorem 8.8: with all replicas honest and synchrony, finalization
        takes a single round trip (2δ) plus processing."""
        delta = 0.05
        sim = build_simulation("banyan", n=4, f=1, p=1, latency=ConstantLatency(delta))
        sim.run(until=10.0)
        protocol = sim.protocol(1)
        commits = {r.block.id: r.commit_time for r in sim.commits_for(1)}
        latencies = [
            commits[block_id] - proposed
            for block_id, proposed in protocol.proposal_times.items()
            if block_id in commits
        ]
        assert latencies
        mean = sum(latencies) / len(latencies)
        assert 2 * delta <= mean < 3 * delta

    def test_banyan_faster_than_icc_in_same_network(self):
        def proposer_latency(protocol_name):
            sim = build_simulation(protocol_name, n=4, f=1, p=1,
                                   latency=ConstantLatency(0.05), seed=2)
            sim.run(until=10.0)
            latencies = []
            for replica_id in sim.replica_ids:
                protocol = sim.protocol(replica_id)
                commits = {r.block.id: r.commit_time for r in sim.commits_for(replica_id)}
                latencies.extend(
                    commits[bid] - t for bid, t in protocol.proposal_times.items() if bid in commits
                )
            return sum(latencies) / len(latencies)

        assert proposer_latency("banyan") < proposer_latency("icc")

    def test_works_at_n19_with_p1_and_p4(self):
        for f, p in [(6, 1), (4, 4)]:
            sim = build_simulation("banyan", n=19, f=f, p=p, rank_delay=0.6,
                                   payload_size=10_000)
            sim.run(until=6.0)
            assert_consistent_chains(sim)
            assert len(sim.commits_for(0)) > 5

    def test_only_leader_blocks_commit_in_synchrony(self):
        sim = build_simulation("banyan", n=4, f=1, p=1)
        sim.run(until=10.0)
        for record in sim.commits_for(0):
            assert record.block.rank == 0

    def test_deterministic_given_seed(self):
        def run(seed):
            sim = build_simulation("banyan", n=4, f=1, p=1, seed=seed)
            sim.run(until=5.0)
            return [(r.block.id, round(r.commit_time, 9), r.finalization_kind)
                    for r in sim.commits_for(0)]

        assert run(11) == run(11)

    def test_fast_and_slow_counts_exposed(self):
        sim = build_simulation("banyan", n=4, f=1, p=1)
        sim.run(until=10.0)
        protocol = sim.protocol(0)
        assert protocol.fast_finalized_count + protocol.slow_finalized_count > 0

    def test_resilience_bound_enforced(self):
        with pytest.raises(ValueError):
            build_simulation("banyan", n=18, f=6, p=1)


class TestBanyanCrashFaults:
    def test_behaves_like_icc_under_crashes(self):
        """Figure 6d's claim: with crash faults there is no fast-path penalty;
        Banyan's progress matches ICC's."""
        faults = FaultPlan.with_crashed([3])

        def committed_rounds(protocol_name):
            sim = build_simulation(protocol_name, n=4, f=1, p=1, faults=faults, seed=5)
            sim.run(until=20.0)
            assert_consistent_chains(sim)
            return [r.block.round for r in sim.commits_for(0)]

        banyan_rounds = committed_rounds("banyan")
        icc_rounds = committed_rounds("icc")
        assert banyan_rounds, "Banyan must keep committing under a crash"
        assert abs(len(banyan_rounds) - len(icc_rounds)) <= 2

    def test_fast_path_disabled_when_too_many_replicas_down(self):
        # With p=1 and one crashed replica, n - p = 3 fast votes can never
        # arrive (only 3 replicas are alive but the crashed one was needed...
        # n=4: alive = 3 = n - p, so the fast path *can* still fire; crash two
        # fewer than quorum? Instead use n=7, p=1 and crash 2 replicas.
        faults = FaultPlan.with_crashed([5, 6])
        sim = build_simulation("banyan", n=7, f=2, p=1, faults=faults)
        sim.run(until=20.0)
        commits = sim.commits_for(0)
        assert commits
        assert all(r.finalization_kind == "slow" for r in commits)
        assert_consistent_chains(sim)

    def test_fast_path_survives_p_crashes(self):
        # With p=4 and up to 4 unresponsive replicas the fast path still fires.
        faults = FaultPlan.with_crashed([15, 16, 17, 18])
        sim = build_simulation("banyan", n=19, f=4, p=4, rank_delay=0.6,
                               payload_size=1_000, faults=faults)
        sim.run(until=8.0)
        commits = sim.commits_for(0)
        assert commits
        fast = sum(1 for r in commits if r.finalization_kind == "fast")
        assert fast / len(commits) > 0.5
        assert_consistent_chains(sim)

    def test_mid_run_crash_preserves_safety(self):
        from repro.net.faults import CrashSchedule

        faults = FaultPlan(crash_schedule=CrashSchedule(crash_times={2: 4.0}))
        sim = build_simulation("banyan", n=4, f=1, p=1, faults=faults)
        sim.run(until=15.0)
        assert_consistent_chains(sim)
        assert_no_conflicting_rounds(sim)

    def test_message_loss_preserves_safety(self):
        sim = build_simulation("banyan", n=4, f=1, p=1,
                               faults=FaultPlan(drop_probability=0.05), seed=9)
        sim.run(until=15.0)
        assert_consistent_chains(sim)
        assert_no_conflicting_rounds(sim)


class TestBanyanStragglers:
    def test_stragglers_beyond_p_force_slow_path_without_penalty(self):
        """With p=1, two slow replicas (more than p) disable the fast path,
        but the protocol falls back to the ICC slow path rather than
        degrading further."""
        params = ProtocolParams(n=7, f=2, p=1, rank_delay=0.4, payload_size=1_000)
        replicas = create_replicas("banyan", params)
        for straggler in (5, 6):
            replicas[straggler] = DelayedReplica(replicas[straggler], extra_delay=0.5)
        sim = Simulation(replicas, NetworkConfig(latency=ConstantLatency(0.05), seed=1))
        sim.run(until=15.0)
        commits = sim.commits_for(0)
        assert commits
        slow = sum(1 for r in commits if r.finalization_kind == "slow")
        assert slow / len(commits) > 0.8
        assert_consistent_chains(sim)

    def test_single_straggler_within_p_budget_keeps_fast_path_at_n4(self):
        """At n=4 and p=1 the fast path fires after 3 replies (the same
        condition as notarization), so one straggler does not disable it —
        exactly the observation of Section 9.3's n=4 experiment."""
        params = ProtocolParams(n=4, f=1, p=1, rank_delay=0.4, payload_size=1_000)
        replicas = create_replicas("banyan", params)
        replicas[3] = DelayedReplica(replicas[3], extra_delay=0.3)
        sim = Simulation(replicas, NetworkConfig(latency=ConstantLatency(0.05), seed=1))
        sim.run(until=15.0)
        commits = sim.commits_for(0)
        assert commits
        fast = sum(1 for r in commits if r.finalization_kind == "fast")
        assert fast / len(commits) > 0.8
        assert_consistent_chains(sim)

    def test_straggler_within_p_budget_keeps_fast_path(self):
        params = ProtocolParams(n=19, f=4, p=4, rank_delay=0.6, payload_size=1_000)
        replicas = create_replicas("banyan", params)
        for straggler in (17, 18):
            replicas[straggler] = DelayedReplica(replicas[straggler], extra_delay=0.5)
        sim = Simulation(replicas, NetworkConfig(latency=ConstantLatency(0.05), seed=1))
        sim.run(until=8.0)
        commits = sim.commits_for(0)
        assert commits
        fast = sum(1 for r in commits if r.finalization_kind == "fast")
        assert fast / len(commits) > 0.5


class TestBanyanByzantine:
    def test_equivocating_leader_does_not_violate_safety(self):
        params = ProtocolParams(n=4, f=1, p=1, rank_delay=0.4, payload_size=1_000)
        replicas = create_replicas(
            "banyan", params, overrides={2: make_equivocating_banyan()}
        )
        sim = Simulation(replicas, NetworkConfig(latency=ConstantLatency(0.05), seed=3))
        sim.run(until=20.0)
        assert_no_conflicting_rounds(sim)
        # Exclude the Byzantine replica when checking chain consistency.
        chains = [[r.block.id for r in sim.commits_for(replica)] for replica in (0, 1, 3)]
        reference = max(chains, key=len)
        for chain in chains:
            assert chain == reference[: len(chain)]
        assert len(sim.commits_for(0)) > 5

    def test_equivocating_leader_blocks_may_skip_its_rounds(self):
        params = ProtocolParams(n=7, f=2, p=1, rank_delay=0.4, payload_size=1_000)
        replicas = create_replicas(
            "banyan", params, overrides={0: make_equivocating_banyan()}
        )
        sim = Simulation(replicas, NetworkConfig(latency=ConstantLatency(0.05), seed=4))
        sim.run(until=20.0)
        assert_no_conflicting_rounds(sim)
        honest = [r for r in sim.replica_ids if r != 0]
        chains = [[rec.block.id for rec in sim.commits_for(r)] for r in honest]
        reference = max(chains, key=len)
        for chain in chains:
            assert chain == reference[: len(chain)]

    def test_equivocating_icc_leader_safe_too(self):
        from repro.byzantine.behaviors import make_equivocating_icc

        params = ProtocolParams(n=4, f=1, p=1, rank_delay=0.4, payload_size=1_000)
        replicas = create_replicas("icc", params, overrides={1: make_equivocating_icc()})
        sim = Simulation(replicas, NetworkConfig(latency=ConstantLatency(0.05), seed=6))
        sim.run(until=20.0)
        assert_no_conflicting_rounds(sim)
