"""Unit tests for the block tree and the finalized chain."""

from __future__ import annotations

import pytest

from repro.blocktree.chain import ChainConsistencyError, FinalizedChain
from repro.blocktree.tree import BlockTree, BlockTreeError
from repro.types.blocks import Block, genesis_block


def _block(round, proposer=0, rank=0, parent=None, payload=b""):
    parent_id = parent.id if isinstance(parent, Block) else parent
    return Block(round=round, proposer=proposer, rank=rank, parent_id=parent_id, payload=payload)


def _chain_blocks(length):
    """A linear chain of ``length`` blocks on top of genesis."""
    blocks = []
    parent = genesis_block()
    for round in range(1, length + 1):
        block = _block(round, proposer=round % 3, parent=parent)
        blocks.append(block)
        parent = block
    return blocks


class TestBlockTree:
    def test_genesis_is_present_and_final(self):
        tree = BlockTree()
        genesis = genesis_block()
        assert genesis.id in tree
        assert tree.is_notarized(genesis.id)
        assert tree.is_unlocked(genesis.id)
        assert tree.is_finalized(genesis.id)

    def test_add_block_returns_true_once(self):
        tree = BlockTree()
        block = _block(1, parent=genesis_block())
        assert tree.add_block(block)
        assert not tree.add_block(block)

    def test_non_genesis_without_parent_rejected(self):
        tree = BlockTree()
        with pytest.raises(BlockTreeError):
            tree.add_block(Block(round=3, proposer=0, rank=0, parent_id=None))

    def test_blocks_at_round(self):
        tree = BlockTree()
        a = _block(1, proposer=0, parent=genesis_block())
        b = _block(1, proposer=1, rank=1, parent=genesis_block())
        tree.add_block(a)
        tree.add_block(b)
        assert {blk.id for blk in tree.blocks_at_round(1)} == {a.id, b.id}

    def test_children(self):
        tree = BlockTree()
        a = _block(1, parent=genesis_block())
        b = _block(2, parent=a)
        tree.add_block(a)
        tree.add_block(b)
        assert [child.id for child in tree.children(a.id)] == [b.id]

    def test_orphan_block_can_be_inserted(self):
        tree = BlockTree()
        a = _block(1, parent=genesis_block())
        b = _block(2, parent=a)
        tree.add_block(b)  # parent not yet inserted
        assert b.id in tree
        assert tree.parent(b.id) is None
        tree.add_block(a)
        assert tree.parent(b.id).id == a.id

    def test_status_flags_are_independent_until_finalized(self):
        tree = BlockTree()
        block = _block(1, parent=genesis_block())
        tree.add_block(block)
        assert not tree.is_notarized(block.id)
        tree.mark_notarized(block.id)
        assert tree.is_notarized(block.id)
        assert not tree.is_unlocked(block.id)
        tree.mark_unlocked(block.id)
        assert tree.is_unlocked(block.id)
        assert not tree.is_finalized(block.id)

    def test_finalized_implies_unlocked(self):
        tree = BlockTree()
        block = _block(1, parent=genesis_block())
        tree.add_block(block)
        tree.mark_finalized(block.id)
        assert tree.is_unlocked(block.id)

    def test_marking_unknown_block_raises(self):
        tree = BlockTree()
        with pytest.raises(BlockTreeError):
            tree.mark_notarized("missing")

    def test_notarized_and_unlocked_filters(self):
        tree = BlockTree()
        a = _block(1, proposer=0, parent=genesis_block())
        b = _block(1, proposer=1, rank=1, parent=genesis_block())
        tree.add_block(a)
        tree.add_block(b)
        tree.mark_notarized(a.id)
        tree.mark_notarized(b.id)
        tree.mark_unlocked(a.id)
        assert [blk.id for blk in tree.notarized_at_round(1)] == [a.id, b.id]
        assert [blk.id for blk in tree.notarized_and_unlocked_at_round(1)] == [a.id]

    def test_ancestors_and_chain_to(self):
        tree = BlockTree()
        blocks = _chain_blocks(4)
        for block in blocks:
            tree.add_block(block)
        ancestors = tree.ancestors(blocks[-1].id)
        assert [b.round for b in ancestors] == [3, 2, 1, 0]
        path = tree.chain_to(blocks[-1].id)
        assert [b.round for b in path] == [0, 1, 2, 3, 4]

    def test_chain_to_unknown_block_raises(self):
        tree = BlockTree()
        with pytest.raises(BlockTreeError):
            tree.chain_to("missing")

    def test_chain_to_with_missing_ancestor_raises(self):
        tree = BlockTree()
        blocks = _chain_blocks(3)
        tree.add_block(blocks[1])
        tree.add_block(blocks[2])
        with pytest.raises(BlockTreeError):
            tree.chain_to(blocks[2].id)

    def test_is_ancestor(self):
        tree = BlockTree()
        blocks = _chain_blocks(3)
        for block in blocks:
            tree.add_block(block)
        fork = _block(2, proposer=2, rank=1, parent=blocks[0])
        tree.add_block(fork)
        assert tree.is_ancestor(blocks[0].id, blocks[2].id)
        assert tree.is_ancestor(blocks[2].id, blocks[2].id)
        assert not tree.is_ancestor(blocks[1].id, fork.id)

    def test_height_tracks_max_round(self):
        tree = BlockTree()
        assert tree.height() == 0
        for block in _chain_blocks(5):
            tree.add_block(block)
        assert tree.height() == 5

    def test_len_counts_blocks(self):
        tree = BlockTree()
        for block in _chain_blocks(3):
            tree.add_block(block)
        assert len(tree) == 4  # genesis + 3


class TestFinalizedChain:
    def test_starts_with_genesis(self):
        chain = FinalizedChain()
        assert len(chain) == 1
        assert chain.head.is_genesis()
        assert chain.height == 0

    def test_append_segment(self):
        chain = FinalizedChain()
        blocks = _chain_blocks(3)
        appended = chain.append_segment(blocks)
        assert [b.round for b in appended] == [1, 2, 3]
        assert chain.head.id == blocks[-1].id
        assert chain.height == 3

    def test_append_skips_already_present_blocks(self):
        chain = FinalizedChain()
        blocks = _chain_blocks(3)
        chain.append_segment(blocks[:2])
        appended = chain.append_segment(blocks)  # full path again
        assert [b.round for b in appended] == [3]

    def test_append_rejects_non_extending_block(self):
        chain = FinalizedChain()
        blocks = _chain_blocks(2)
        chain.append_segment(blocks)
        stranger = _block(3, proposer=5, parent="not-the-head")
        with pytest.raises(ChainConsistencyError):
            chain.append_segment([stranger])

    def test_append_rejects_non_increasing_round(self):
        chain = FinalizedChain()
        blocks = _chain_blocks(2)
        chain.append_segment(blocks)
        bad = Block(round=2, proposer=9, rank=0, parent_id=chain.head.id)
        with pytest.raises(ChainConsistencyError):
            chain.append_segment([bad])

    def test_prefix_and_consistency(self):
        blocks = _chain_blocks(4)
        short = FinalizedChain()
        short.append_segment(blocks[:2])
        long = FinalizedChain()
        long.append_segment(blocks)
        assert short.prefix_of(long)
        assert not long.prefix_of(short)
        assert short.consistent_with(long)
        assert long.consistent_with(short)

    def test_inconsistent_chains_detected(self):
        blocks = _chain_blocks(2)
        chain_a = FinalizedChain()
        chain_a.append_segment(blocks)
        fork = _block(1, proposer=3, rank=1, parent=genesis_block())
        chain_b = FinalizedChain()
        chain_b.append_segment([fork])
        assert not chain_a.consistent_with(chain_b)
        assert chain_a.common_prefix_length(chain_b) == 1  # genesis only

    def test_find_and_contains(self):
        chain = FinalizedChain()
        blocks = _chain_blocks(2)
        chain.append_segment(blocks)
        assert blocks[0].id in chain
        assert chain.find(blocks[0].id).round == 1
        assert chain.find("missing") is None

    def test_block_at_and_iteration(self):
        chain = FinalizedChain()
        blocks = _chain_blocks(3)
        chain.append_segment(blocks)
        assert chain.block_at(0).is_genesis()
        assert [b.round for b in chain] == [0, 1, 2, 3]
        assert chain.last_finalized_round() == 3
