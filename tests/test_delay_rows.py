"""Scalar ↔ batched equivalence for the row-oriented broadcast pipeline.

The batched delay-table path (``LatencyModel.nominal_row`` /
``delay_row``, the transports' row-based ``broadcast_times`` and
``broadcast_arrival_row``) must be *observably identical* to the per-copy
scalar pipeline: the same ``(receiver, deliver_at)`` sequence, the same
number and order of rng draws (pinned via ``rng.getstate()``), and the
same transport counters.  The scalar reference here is
``Transport.broadcast`` — the Delivery-building path, which still prices
every copy with per-copy ``latency.delay`` / ``transfer_time`` / fault
calls — so the sweep below (every latency model × jitter setting × fault
plan × transport) is exactly the equivalence the golden corpus relies on.
"""

import random

import pytest

from repro.net.bandwidth import BandwidthModel
from repro.net.faults import (
    CrashSchedule,
    FaultPlan,
    LossBurst,
    PartitionPlan,
)
from repro.net.latency import (
    LATENCY_MODELS,
    ConstantLatency,
    GeoLatency,
    LatencyModel,
    MatrixLatency,
    UniformLatency,
    WanMatrixLatency,
)
from repro.net.topology import four_global_datacenters
from repro.net.transport import (
    ContendedUplinkTransport,
    DirectTransport,
    RelayTransport,
)

N = 12

TOPOLOGY = four_global_datacenters(N)


class _Msg:
    wire_size = 2048


def _matrix_delays():
    rng = random.Random(7)
    return {
        (a, b): 0.01 + 0.09 * rng.random()
        for a in range(N)
        for b in range(a + 1, N)
        if rng.random() < 0.7  # leave holes so the default path is hit too
    }


#: label -> factory; each factory returns a fresh model instance.
LATENCY_CASES = {
    "constant": lambda: ConstantLatency(0.02),
    "uniform": lambda: UniformLatency(0.01, 0.05),
    "matrix-j0": lambda: MatrixLatency(_matrix_delays(), jitter=0.0),
    "matrix-j": lambda: MatrixLatency(_matrix_delays(), jitter=0.08),
    "geo-j0": lambda: GeoLatency(TOPOLOGY, jitter=0.0),
    "geo-j": lambda: GeoLatency(TOPOLOGY, jitter=0.05),
    "wan-j0": lambda: WanMatrixLatency(TOPOLOGY, jitter=0.0),
    "wan-j": lambda: WanMatrixLatency(TOPOLOGY, jitter=0.05),
}

#: label -> factory; plans chosen to hit every rng-consumption branch:
#: none (trivial fast path), crashes/partition (faulty, no drop draws),
#: drops/burst (drop draws; with a jittered model this is the scalar
#: fallback where the draws interleave).
FAULT_CASES = {
    "none": lambda: FaultPlan.none(),
    "crashes": lambda: FaultPlan(
        crash_schedule=CrashSchedule(crash_times={2: 0.0, 5: 1.5},
                                     recover_times={5: 3.0})
    ),
    "partition": lambda: FaultPlan(
        partitions=PartitionPlan.single(1.0, 4.0, group_a=range(0, 4),
                                        group_b=range(4, N))
    ),
    "drops": lambda: FaultPlan(drop_probability=0.2),
    "burst": lambda: FaultPlan(
        loss_bursts=[LossBurst(start=0.5, end=5.0, probability=0.3)]
    ),
    "everything": lambda: FaultPlan(
        crash_schedule=CrashSchedule(crash_times={1: 0.0}),
        drop_probability=0.1,
        partitions=PartitionPlan.single(2.0, 3.0, group_a=range(0, 6),
                                        group_b=range(6, N)),
        loss_bursts=[LossBurst(start=1.0, end=2.5, probability=0.25)],
    ),
}

TRANSPORT_CASES = {
    "direct": lambda lat, bw, fp: DirectTransport(lat, bw, fp),
    "contended": lambda lat, bw, fp: ContendedUplinkTransport(lat, bw, fp),
    "relay": lambda lat, bw, fp: RelayTransport(lat, bw, fp, relays=3),
}

#: Broadcast schedule: (sender, time) — repeats senders to exercise the
#: row caches, advances time through the fault windows, and lands one
#: send exactly on a window boundary.
SCHEDULE = [(0, 0.0), (3, 0.2), (0, 0.2), (7, 1.0), (3, 1.7), (0, 2.0),
            (11, 2.6), (7, 3.0), (5, 3.2), (0, 4.1)]


def _run(transport_factory, latency_factory, fault_factory, batched):
    """Run the broadcast schedule; return (pairs per send, rng state, stats)."""
    latency = latency_factory()
    faults = fault_factory()
    bandwidth = BandwidthModel(topology=TOPOLOGY)
    transport = transport_factory(latency, bandwidth, faults)
    rng = random.Random(1234)
    receivers = tuple(range(N))
    message = _Msg()
    result = []
    for sender, now in SCHEDULE:
        if batched:
            row = transport.broadcast_arrival_row(sender, receivers, message,
                                                  now, rng)
            if row is not None:
                pairs = list(zip(receivers, row))
            else:
                pairs = transport.broadcast_times(sender, receivers, message,
                                                  now, rng)
        else:
            pairs = [
                (delivery.receiver, delivery.deliver_at)
                for delivery in transport.broadcast(sender, receivers, message,
                                                    now, rng)
            ]
        result.append(pairs)
    return result, rng.getstate(), transport.stats()


@pytest.mark.parametrize("fault_name", sorted(FAULT_CASES))
@pytest.mark.parametrize("latency_name", sorted(LATENCY_CASES))
@pytest.mark.parametrize("transport_name", sorted(TRANSPORT_CASES))
def test_batched_equals_scalar(transport_name, latency_name, fault_name):
    transport_factory = TRANSPORT_CASES[transport_name]
    latency_factory = LATENCY_CASES[latency_name]
    fault_factory = FAULT_CASES[fault_name]
    scalar_pairs, scalar_state, scalar_stats = _run(
        transport_factory, latency_factory, fault_factory, batched=False)
    batched_pairs, batched_state, batched_stats = _run(
        transport_factory, latency_factory, fault_factory, batched=True)
    # Bit-identical arrivals, in the same order — `==` on floats, no
    # tolerance: the golden corpus digests depend on the exact bytes.
    assert batched_pairs == scalar_pairs
    # The rng stream position must match draw for draw.
    assert batched_state == scalar_state
    # Transport counters (NIC queue, wire/sender copies) advance alike.
    assert batched_stats == scalar_stats


@pytest.mark.parametrize("latency_name", sorted(LATENCY_CASES))
def test_delay_row_matches_scalar_delay(latency_name):
    """`delay_row` == per-receiver `delay` calls, values and rng stream."""
    receivers = tuple(range(N))
    for sender in (0, 4, N - 1):
        scalar_model = LATENCY_CASES[latency_name]()
        batched_model = LATENCY_CASES[latency_name]()
        scalar_rng = random.Random(99)
        batched_rng = random.Random(99)
        for _ in range(3):  # repeat: caches must not change results
            scalar = [scalar_model.delay(sender, receiver, scalar_rng)
                      for receiver in receivers]
            batched = batched_model.delay_row(sender, receivers, batched_rng)
            assert batched == scalar
            assert batched_rng.getstate() == scalar_rng.getstate()


@pytest.mark.parametrize("latency_name", sorted(LATENCY_CASES))
def test_nominal_row_consumes_no_rng(latency_name):
    model = LATENCY_CASES[latency_name]()
    rng = random.Random(5)
    state = rng.getstate()
    model.nominal_row(0, tuple(range(N)))
    assert rng.getstate() == state  # nominal_row takes no rng at all
    if model.jitter_free:
        # Jitter-free models must serve delay_row without drawing either.
        model.delay_row(0, tuple(range(N)), rng)
        assert rng.getstate() == state


def test_jitter_free_flags():
    assert ConstantLatency(0.02).jitter_free
    assert MatrixLatency({}, jitter=0.0).jitter_free
    assert not MatrixLatency({}, jitter=0.1).jitter_free
    assert GeoLatency(TOPOLOGY, jitter=0.0).jitter_free
    assert not GeoLatency(TOPOLOGY, jitter=0.05).jitter_free
    assert WanMatrixLatency(TOPOLOGY, jitter=0.0).jitter_free
    assert not WanMatrixLatency(TOPOLOGY, jitter=0.05).jitter_free
    assert not UniformLatency(0.01, 0.02).jitter_free


class TestMatrixCanonicalKeys:
    def test_reverse_orientation_resolved_at_construction(self):
        model = MatrixLatency({(0, 1): 0.05})
        rng = random.Random(0)
        assert model.delay(0, 1, rng) == 0.05
        assert model.delay(1, 0, rng) == 0.05

    def test_exact_entry_wins_over_mirror(self):
        model = MatrixLatency({(0, 1): 0.05, (1, 0): 0.09})
        rng = random.Random(0)
        assert model.delay(0, 1, rng) == 0.05
        assert model.delay(1, 0, rng) == 0.09

    def test_missing_pair_uses_default(self):
        model = MatrixLatency({(0, 1): 0.05}, default_s=0.123)
        rng = random.Random(0)
        assert model.delay(2, 3, rng) == 0.123


class TestExpectedDelayClosedForms:
    def test_all_shipped_models_override_the_probe_fallback(self):
        """Every shipped model must have a closed-form expected_delay.

        The base-class fallback draws 32 samples per pair — O(n² · 32)
        model calls when deriving timeouts.  Shipped models override it;
        this pins that a new model cannot silently regress to probing.
        """
        shipped = [ConstantLatency, UniformLatency, MatrixLatency,
                   GeoLatency, WanMatrixLatency]
        shipped.extend(LATENCY_MODELS.values())
        for model_cls in shipped:
            assert model_cls.expected_delay is not LatencyModel.expected_delay, (
                f"{model_cls.__name__} must override expected_delay with a "
                "closed form"
            )

    @pytest.mark.parametrize("latency_name", sorted(LATENCY_CASES))
    def test_max_expected_delay_matches_bruteforce(self, latency_name):
        model = LATENCY_CASES[latency_name]()
        ids = tuple(range(N))
        brute = max(
            model.expected_delay(a, b)
            for a in ids for b in ids if a != b
        )
        assert model.max_expected_delay(ids) == brute

    def test_probe_fallback_still_works_for_third_party_models(self):
        class ThirdParty(LatencyModel):
            def delay(self, sender, receiver, rng):
                return 0.01 + 0.01 * rng.random()

        model = ThirdParty()
        value = model.expected_delay(0, 1)
        assert 0.01 <= value <= 0.02
        # Deterministic: the probe rng is reseeded per call.
        assert model.expected_delay(0, 1) == value

    def test_base_rows_keep_third_party_models_working(self):
        class ThirdParty(LatencyModel):
            def delay(self, sender, receiver, rng):
                return 0.002 * (sender + receiver + 1)

        model = ThirdParty()
        receivers = tuple(range(4))
        assert model.nominal_row(1, receivers) == [
            model.delay(1, receiver, random.Random(0))
            for receiver in receivers
        ]
        rng = random.Random(3)
        assert model.delay_row(1, receivers, rng) == [
            0.002 * (1 + receiver + 1) for receiver in receivers
        ]


class TestRowCaches:
    def test_nominal_row_rebuilds_for_different_receiver_sets(self):
        model = GeoLatency(TOPOLOGY, jitter=0.0)
        full = tuple(range(N))
        subset = (0, 3, 7)
        full_row = model.nominal_row(0, full)
        subset_row = model.nominal_row(0, subset)
        assert subset_row == [full_row[0], full_row[3], full_row[7]]
        # Asking for the full set again still returns the full row.
        assert model.nominal_row(0, full) == full_row

    def test_transfer_rows_not_cached_for_custom_bandwidth(self):
        class CountingBandwidth(BandwidthModel):
            calls = 0

            def transfer_time(self, sender, receiver, size_bytes):
                CountingBandwidth.calls += 1
                return super().transfer_time(sender, receiver, size_bytes)

        bandwidth = CountingBandwidth(topology=TOPOLOGY)
        transport = DirectTransport(ConstantLatency(0.02), bandwidth,
                                    FaultPlan.none())
        rng = random.Random(0)
        receivers = tuple(range(N))
        transport.broadcast_times(0, receivers, _Msg(), 0.0, rng)
        transport.broadcast_times(0, receivers, _Msg(), 0.1, rng)
        # A custom bandwidth model keeps the per-copy call pattern: one
        # call per receiver per broadcast, never served from a cached row.
        assert CountingBandwidth.calls == 2 * N
