"""Tests for the scaling work: WAN matrix, event batching, drain batching.

Four seams of the n=256 scaling PR are pinned here:

* the measured inter-region RTT matrix and the :class:`WanMatrixLatency`
  model built on it (lookup, symmetry, fallback, jitter bounds),
* its wiring through :class:`ExperimentConfig` / :class:`ExperimentSpec`
  serialisation — including that default-``geo`` configs keep their
  serialised shape (and hence their result-cache hashes),
* determinism of the batched event loop: ``run()`` (which groups
  same-instant broadcast deliveries into one heap event) must produce
  exactly the same execution as the one-event-at-a-time ``step()`` path,
* the topology's cached derived lookups and the mempool's one-call
  ``drain_batch`` proposal builder.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.eval.experiment import ExperimentConfig, run_experiment
from repro.eval.plan import ExperimentSpec
from repro.eval.scenarios import plan_scale_sweep
from repro.net.faults import FaultPlan
from repro.net.latency import (
    ConstantLatency,
    GeoLatency,
    WanMatrixLatency,
    available_latency_models,
    build_latency_model,
)
from repro.net.topology import (
    AWS_REGIONS,
    AWS_REGION_RTT_MS,
    Datacenter,
    Topology,
    four_global_datacenters,
    region_rtt_ms,
    topology_by_name,
)
from repro.protocols.base import ProtocolParams
from repro.protocols.registry import create_replicas
from repro.runtime.simulator import NetworkConfig, Simulation
from repro.smr.mempool import Mempool
from repro.workload.spec import WorkloadSpec


class TestRegionRttMatrix:
    def test_matrix_is_symmetric_and_positive(self):
        for (a, b), rtt in AWS_REGION_RTT_MS.items():
            assert rtt > 0
            assert AWS_REGION_RTT_MS[(b, a)] == rtt

    def test_matrix_regions_are_catalogue_entries(self):
        for a, b in AWS_REGION_RTT_MS:
            assert a in AWS_REGIONS and b in AWS_REGIONS

    def test_lookup_helper(self):
        rtt = region_rtt_ms("us-east-1", "eu-west-1")
        assert rtt is not None and 50 < rtt < 150
        assert region_rtt_ms("eu-west-1", "us-east-1") == rtt
        assert region_rtt_ms("us-east-1", "nowhere-1") is None


class TestWanMatrixLatency:
    def test_cross_region_nominal_is_half_the_rtt(self):
        topology = four_global_datacenters(4)
        model = WanMatrixLatency(topology, jitter=0.0)
        a, b = 0, 1
        rtt = region_rtt_ms(topology.datacenter(a).name,
                            topology.datacenter(b).name)
        assert model.delay(a, b, random.Random(0)) == pytest.approx(rtt / 2000.0)

    def test_unmeasured_pair_falls_back_to_distance(self):
        offgrid = Datacenter("測試-offgrid", 10.0, 10.0)
        topology = Topology([AWS_REGIONS["us-east-1"], offgrid])
        model = WanMatrixLatency(topology, jitter=0.0)
        expected = 0.002 + topology.distance_km(0, 1) / 100_000.0
        assert model.delay(0, 1, random.Random(0)) == pytest.approx(expected)

    def test_jitter_bounds_and_expectation(self):
        topology = four_global_datacenters(4)
        model = WanMatrixLatency(topology, jitter=0.10)
        nominal = WanMatrixLatency(topology, jitter=0.0).delay(0, 1, random.Random(0))
        rng = random.Random(42)
        draws = [model.delay(0, 1, rng) for _ in range(500)]
        assert all(nominal <= d <= nominal * 1.10 for d in draws)
        assert model.expected_delay(0, 1) == pytest.approx(nominal * 1.05)

    def test_registry_builds_by_name(self):
        topology = four_global_datacenters(4)
        assert isinstance(build_latency_model("wan-matrix", topology),
                          WanMatrixLatency)
        assert isinstance(build_latency_model("geo", topology), GeoLatency)
        assert available_latency_models() == ["geo", "wan-matrix"]
        with pytest.raises((KeyError, ValueError)):
            build_latency_model("bogus", topology)


class TestLatencyModelSerialization:
    def test_config_round_trips_wan_matrix(self):
        config = ExperimentConfig(protocol="banyan",
                                  params=ProtocolParams(n=4, f=1, p=1),
                                  latency_model="wan-matrix")
        data = config.to_dict()
        assert data["latency_model"] == "wan-matrix"
        assert ExperimentConfig.from_dict(data).latency_model == "wan-matrix"

    def test_default_geo_keeps_the_serialised_shape(self):
        # Pre-existing configs must keep their content hashes: the key only
        # appears when the model is overridden.
        config = ExperimentConfig(protocol="banyan",
                                  params=ProtocolParams(n=4, f=1, p=1))
        assert "latency_model" not in config.to_dict()

    def test_spec_round_trips_wan_matrix(self):
        spec = ExperimentSpec(protocol="banyan",
                              params=ProtocolParams(n=4, f=1, p=1),
                              topology="global4", latency_model="wan-matrix")
        data = spec.to_dict()
        assert data["latency_model"] == "wan-matrix"
        rebuilt = ExperimentSpec.from_dict(data)
        assert rebuilt.latency_model == "wan-matrix"
        assert "latency_model" not in ExperimentSpec(
            protocol="banyan", params=ProtocolParams(n=4, f=1, p=1),
            topology="global4").to_dict()

    def test_wan_matrix_run_executes(self):
        config = ExperimentConfig(protocol="banyan",
                                  params=ProtocolParams(n=4, f=1, p=1),
                                  duration=4.0, warmup=0.0, seed=2,
                                  latency_model="wan-matrix")
        result = run_experiment(config)
        assert result.metrics.summary()["committed_blocks"] > 0


class TestScaleSweepPlan:
    def test_specs_are_fluid_wan_and_resilient(self):
        plan = plan_scale_sweep(replica_counts=(64, 256))
        assert [spec.params.n for spec in plan.specs] == [64, 256]
        for spec in plan.specs:
            n, f, p = spec.params.n, spec.params.f, spec.params.p
            # The fast path needs n >= 3f + 2p + 1 at every benchmarked size.
            assert n >= 3 * f + 2 * p + 1
            assert spec.workload.fluid
            assert spec.workload.num_clients == 1_000_000
            assert spec.latency_model == "wan-matrix"
            # The whole plan must survive the spec/cache serialisation
            # (content equality: FaultPlan instances compare by identity).
            assert ExperimentSpec.from_dict(spec.to_dict()).to_dict() == spec.to_dict()


class TestBatchedEventLoopDeterminism:
    """``run()`` batches same-instant deliveries; ``step()`` never does.

    Under a constant-latency network every broadcast's copies arrive at the
    same instant, so the batched path exercises its mbatch grouping on
    every round — the executions must nevertheless be indistinguishable.
    """

    def _simulation(self) -> Simulation:
        params = ProtocolParams(n=4, f=1, p=1, rank_delay=0.2)
        protocols = create_replicas("banyan", params)
        network = NetworkConfig(latency=ConstantLatency(0.03),
                                faults=FaultPlan.none(), seed=7)
        return Simulation(protocols, network)

    @staticmethod
    def _commit_digest(simulation: Simulation):
        return [
            (record.replica_id, record.block.round, record.block.id,
             record.commit_time, record.finalization_kind)
            for replica_id in range(4)
            for record in simulation.commits_for(replica_id)
        ]

    def test_run_matches_single_stepping(self):
        batched = self._simulation()
        batched.run(until=5.0)

        stepped = self._simulation()
        stepped.start()
        while stepped.now <= 5.0 and stepped.step():
            pass

        assert self._commit_digest(batched) == self._commit_digest(stepped)
        assert batched.messages_sent == stepped.messages_sent


class TestSpreadBatchDeterminism:
    """Jittered broadcasts are chained through single "sbatch" heap events.

    Under a jittered latency model arrival instants are pairwise distinct,
    so ``run()`` schedules each broadcast as one chained event instead of n
    per-copy pushes — the execution must nevertheless be indistinguishable
    from the per-copy pipeline (still reachable via a delivery listener)
    and from one-event-at-a-time ``step()``.
    """

    @staticmethod
    def _simulation(compute: str = "zero") -> Simulation:
        params = ProtocolParams(n=7, f=1, p=1, rank_delay=0.2)
        protocols = create_replicas("banyan", params)
        topology = four_global_datacenters(7)
        network = NetworkConfig(latency=GeoLatency(topology, jitter=0.05),
                                faults=FaultPlan.none(), seed=11,
                                compute=compute)
        return Simulation(protocols, network)

    @staticmethod
    def _commit_digest(simulation: Simulation):
        return [
            (record.replica_id, record.block.round, record.block.id,
             record.commit_time, record.finalization_kind)
            for replica_id in range(7)
            for record in simulation.commits_for(replica_id)
        ]

    def test_uses_sbatch_not_mbatch_under_jitter(self):
        simulation = self._simulation()
        simulation.run(until=5.0)
        counts = simulation.event_counts()
        assert counts["sbatch"] > 0
        assert counts["sbatch_members"] > counts["sbatch"]
        assert counts["mbatch"] == 0

    def test_zero_jitter_still_groups(self):
        params = ProtocolParams(n=7, f=1, p=1, rank_delay=0.2)
        protocols = create_replicas("banyan", params)
        network = NetworkConfig(latency=ConstantLatency(0.03),
                                faults=FaultPlan.none(), seed=11)
        simulation = Simulation(protocols, network)
        simulation.run(until=5.0)
        counts = simulation.event_counts()
        assert counts["mbatch"] > 0
        assert counts["sbatch"] == 0

    @pytest.mark.parametrize("compute", ["zero", "crypto"])
    def test_matches_per_copy_reference(self, compute):
        chained = self._simulation(compute)
        chained.run(until=5.0)

        reference = self._simulation(compute)
        # A delivery listener forces the one-event-per-copy pipeline.
        reference.add_delivery_listener(lambda *args: None)
        reference.run(until=5.0)
        assert reference.event_counts()["sbatch"] == 0

        assert self._commit_digest(chained) == self._commit_digest(reference)
        assert chained.messages_sent == reference.messages_sent
        assert chained.messages_delivered == reference.messages_delivered
        assert chained.messages_dropped == reference.messages_dropped
        assert chained.compute_stats() == reference.compute_stats()

    @pytest.mark.parametrize("compute", ["zero", "crypto"])
    def test_run_matches_single_stepping(self, compute):
        batched = self._simulation(compute)
        batched.run(until=5.0)

        stepped = self._simulation(compute)
        stepped.start()
        while stepped.now <= 5.0 and stepped.step():
            pass

        assert self._commit_digest(batched) == self._commit_digest(stepped)
        # (Not messages_delivered: the stepping loop checks the horizon
        # before each step, so it delivers the first event past 5.0 too —
        # the same artifact the mbatch determinism test above tolerates.)
        assert batched.messages_sent == stepped.messages_sent

    def test_budgeted_run_resumes_mid_chain(self):
        # Tiny budgets force run() to stop between members of a chain and
        # resume on the next call.  Both sides are driven with the same
        # call pattern against an infinite horizon (a finite ``until``
        # clamps the clock forward at every return, which is not a
        # resumable pattern for any event kind).
        def drive(simulation):
            for _ in range(2000):
                simulation.run(until=math.inf, max_events=3)

        chained = self._simulation()
        drive(chained)
        assert chained.event_counts()["sbatch"] > 0

        reference = self._simulation()
        reference.add_delivery_listener(lambda *args: None)
        drive(reference)

        assert self._commit_digest(chained) == self._commit_digest(reference)
        assert chained.messages_delivered == reference.messages_delivered
        assert chained.now == reference.now


class TestTopologyCaches:
    def test_replicas_in_matches_placement(self):
        topology = topology_by_name("worldwide", 19)
        seen = []
        for datacenter in topology.datacenters():
            members = topology.replicas_in(datacenter.name)
            assert members == [i for i in topology.replica_ids
                               if topology.datacenter(i).name == datacenter.name]
            seen.extend(members)
        assert sorted(seen) == topology.replica_ids

    def test_distance_is_symmetric_and_stable(self):
        topology = topology_by_name("global4", 8)
        first = topology.distance_km(0, 5)
        assert topology.distance_km(5, 0) == first
        assert topology.distance_km(0, 5) == first
        assert topology.distance_km(3, 3) == 0.0


class TestMempoolDrainBatch:
    @staticmethod
    def _filled(transactions) -> Mempool:
        mempool = Mempool(max_size=1000)
        for transaction in transactions:
            assert mempool.add(transaction)
        return mempool

    def test_matches_repeated_take(self):
        transactions = [bytes([i]) * (20 + i) for i in range(10)]
        drained = self._filled(transactions)
        taken = self._filled(transactions)
        batch, total = drained.drain_batch(100)
        assert batch == taken.take(100)
        assert total == sum(len(tx) for tx in batch)
        assert len(drained) == len(taken)

    def test_respects_max_count(self):
        mempool = self._filled([b"x" * 10] * 8)
        batch, total = mempool.drain_batch(10_000, max_count=3)
        assert len(batch) == 3 and total == 30
        assert len(mempool) == 5

    def test_oversized_head_is_left_in_place(self):
        mempool = self._filled([b"y" * 500])
        batch, total = mempool.drain_batch(100)
        assert batch == [] and total == 0
        assert len(mempool) == 1


class TestCliLatencyModel:
    def test_run_accepts_the_flag(self, capsys):
        from repro.cli import main
        code = main(["run", "--protocol", "banyan", "--n", "4", "--f", "1",
                     "--p", "1", "--duration", "2", "--payload", "1000",
                     "--latency-model", "wan-matrix"])
        assert code == 0
        assert "banyan" in capsys.readouterr().out

    def test_unknown_model_is_rejected_at_parse_time(self, capsys):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["run", "--latency-model", "bogus"])
        assert "--latency-model" in capsys.readouterr().err
