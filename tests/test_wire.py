"""Wire-format tests: fuzzed round-trip identity and typed failure modes.

The cluster runtime is only as trustworthy as its serialization: a field
silently dropped or reordered on the wire would corrupt consensus state in
ways no socket-level test reliably catches.  So the core property here is
*round-trip identity over randomized structures* — for every encodable
type, ``decode(encode(x)) == x`` (dataclass equality is field-wise, and
block ids are content hashes, so identity extends to the id level).

The negative half: every truncation of a valid payload and every corrupted
frame header must raise :class:`WireError` — never ``IndexError``,
``struct.error``, or a silently wrong object.
"""

import random

import pytest

from repro.cluster.wire import (
    FRAME_HEADER_SIZE,
    MAX_FRAME_BYTES,
    WIRE_MAGIC,
    WIRE_VERSION,
    ClientSubmit,
    FrameDecoder,
    Hello,
    WireError,
    decode_envelope,
    decode_payload,
    encode_envelope,
    encode_frame,
    encode_payload,
)
from repro.crypto.aggregate import AggregateSignature
from repro.crypto.signatures import Signature
from repro.types.blocks import Block
from repro.types.certificates import (
    Certificate,
    FastFinalization,
    Finalization,
    Notarization,
    UnlockProof,
)
from repro.types.messages import BlockProposal, CertificateMessage, VoteMessage
from repro.types.votes import VoteKind, make_vote

# --------------------------------------------------------------------- #
# Randomized structure generators
# --------------------------------------------------------------------- #


def _rand_block_id(rng):
    return "".join(rng.choice("0123456789abcdef") for _ in range(16))


def _rand_signature(rng):
    return Signature(
        signer=rng.randrange(-4, 64),
        tag=rng.randbytes(rng.randrange(0, 40)),
        message_digest=rng.randbytes(rng.randrange(0, 40)),
    )


def _rand_aggregate(rng):
    return AggregateSignature(shares=tuple(
        (rng.randrange(0, 64), _rand_signature(rng))
        for _ in range(rng.randrange(0, 5))
    ))


def _rand_block(rng):
    return Block(
        round=rng.randrange(0, 1 << 40),
        proposer=rng.randrange(-2, 64),
        rank=rng.randrange(0, 64),
        parent_id=None if rng.random() < 0.2 else _rand_block_id(rng),
        payload=rng.randbytes(rng.randrange(0, 200)),
        payload_size=None if rng.random() < 0.5 else rng.randrange(0, 1 << 30),
    )


def _rand_vote(rng):
    return make_vote(
        rng.choice(list(VoteKind)),
        rng.randrange(0, 1 << 20),
        _rand_block_id(rng),
        rng.randrange(-4, 64),
        None if rng.random() < 0.5 else _rand_signature(rng),
    )


def _rand_certificate(rng):
    cls = rng.choice([Notarization, Finalization, FastFinalization])
    return cls(
        round=rng.randrange(0, 1 << 20),
        block_id=_rand_block_id(rng),
        voters=frozenset(rng.sample(range(64), rng.randrange(0, 8))),
        aggregate=None if rng.random() < 0.5 else _rand_aggregate(rng),
    )


def _rand_unlock_proof(rng):
    return UnlockProof(
        round=rng.randrange(0, 1 << 20),
        block_id=_rand_block_id(rng),
        votes_by_block=tuple(
            (_rand_block_id(rng),
             frozenset(rng.sample(range(64), rng.randrange(0, 6))))
            for _ in range(rng.randrange(0, 4))
        ),
    )


def _rand_notarization(rng):
    return Notarization(
        round=rng.randrange(0, 1 << 20),
        block_id=_rand_block_id(rng),
        voters=frozenset(rng.sample(range(64), rng.randrange(0, 8))),
        aggregate=None if rng.random() < 0.5 else _rand_aggregate(rng),
    )


def _rand_proposal(rng):
    return BlockProposal(
        block=_rand_block(rng),
        parent_notarization=(None if rng.random() < 0.3
                             else _rand_notarization(rng)),
        parent_unlock_proof=(None if rng.random() < 0.5
                             else _rand_unlock_proof(rng)),
        fast_vote=None if rng.random() < 0.5 else _rand_vote(rng),
        relayed_by=None if rng.random() < 0.5 else rng.randrange(-2, 64),
    )


def _rand_vote_message(rng):
    return VoteMessage(
        votes=tuple(_rand_vote(rng) for _ in range(rng.randrange(0, 6))),
        sender=rng.randrange(-2, 64),
    )


def _rand_certificate_message(rng):
    return CertificateMessage(
        certificate=None if rng.random() < 0.2 else _rand_certificate(rng),
        unlock_proof=None if rng.random() < 0.5 else _rand_unlock_proof(rng),
        sender=rng.randrange(-2, 64),
    )


def _rand_hello(rng):
    return Hello(sender=rng.randrange(-1000, 64),
                 role=rng.choice(["replica", "client"]))


def _rand_client_submit(rng):
    return ClientSubmit(transaction=rng.randbytes(rng.randrange(0, 300)),
                        client_id=rng.randrange(0, 1 << 16))


GENERATORS = [
    _rand_block,
    _rand_vote,
    _rand_signature,
    _rand_aggregate,
    _rand_certificate,
    _rand_unlock_proof,
    _rand_proposal,
    _rand_vote_message,
    _rand_certificate_message,
    _rand_hello,
    _rand_client_submit,
]


def _rand_message(rng):
    return rng.choice(GENERATORS)(rng)


# --------------------------------------------------------------------- #
# Round-trip identity
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("generator", GENERATORS,
                         ids=lambda g: g.__name__.lstrip("_"))
def test_roundtrip_identity_fuzzed(generator):
    rng = random.Random(hash(generator.__name__) & 0xFFFF)
    for _ in range(200):
        obj = generator(rng)
        decoded = decode_payload(encode_payload(obj))
        assert decoded == obj
        assert type(decoded) is type(obj)


def test_roundtrip_preserves_block_id():
    # Block ids are content hashes: identity must survive serialization at
    # the id level, or certified chains would not cross the wire.
    rng = random.Random(7)
    for _ in range(100):
        block = _rand_block(rng)
        assert decode_payload(encode_payload(block)).id == block.id


def test_roundtrip_vote_subclasses():
    # make_vote yields distinct subclasses per kind; decode must restore
    # the exact subclass, not the base Vote.
    for kind in VoteKind:
        vote = make_vote(kind, 3, "abcd", 2, None)
        decoded = decode_payload(encode_payload(vote))
        assert type(decoded) is type(vote)
        assert decoded == vote


def test_envelope_roundtrip_fuzzed():
    rng = random.Random(11)
    for _ in range(300):
        sender = rng.randrange(-1000, 1000)
        message = _rand_message(rng)
        assert decode_envelope(encode_envelope(sender, message)) \
            == (sender, message)


def test_none_payload_roundtrip():
    assert decode_payload(encode_payload(None)) is None


def test_large_varint_fields_roundtrip():
    block = Block(round=2**200, proposer=-(2**80), rank=0, parent_id=None)
    assert decode_payload(encode_payload(block)) == block


def test_unknown_certificate_subclass_rejected():
    class Weird(Certificate):
        pass

    with pytest.raises(WireError):
        encode_payload(Weird(round=1, block_id="x", voters=frozenset()))


def test_unencodable_object_rejected():
    with pytest.raises(WireError):
        encode_payload(object())


# --------------------------------------------------------------------- #
# Truncation and corruption
# --------------------------------------------------------------------- #


def test_every_truncation_raises_wire_error():
    rng = random.Random(13)
    for _ in range(40):
        payload = encode_payload(_rand_message(rng))
        for cut in range(len(payload)):
            with pytest.raises(WireError):
                decode_payload(payload[:cut])


def test_trailing_garbage_raises_wire_error():
    payload = encode_payload(Hello(sender=1))
    with pytest.raises(WireError):
        decode_payload(payload + b"\x00")


def test_random_garbage_never_escapes_wire_error():
    rng = random.Random(17)
    for _ in range(500):
        garbage = rng.randbytes(rng.randrange(0, 80))
        try:
            decode_payload(garbage)
        except WireError:
            pass
        # Any non-WireError exception (IndexError, struct.error, …)
        # propagates and fails the test.


def test_unbounded_varint_rejected():
    with pytest.raises(WireError):
        decode_payload(b"\x01" + b"\xff" * 200)


# --------------------------------------------------------------------- #
# Frames and streaming decode
# --------------------------------------------------------------------- #


def test_frame_decoder_reassembles_byte_by_byte():
    rng = random.Random(19)
    messages = [(rng.randrange(0, 8), _rand_message(rng)) for _ in range(30)]
    stream = b"".join(encode_frame(s, m) for s, m in messages)
    decoder = FrameDecoder()
    out = []
    for i in range(len(stream)):
        out.extend(decoder.feed(stream[i:i + 1]))
    assert out == messages
    assert decoder.buffered_bytes == 0


def test_frame_decoder_random_chunking():
    rng = random.Random(23)
    messages = [(rng.randrange(0, 8), _rand_message(rng)) for _ in range(50)]
    stream = b"".join(encode_frame(s, m) for s, m in messages)
    decoder = FrameDecoder()
    out = []
    position = 0
    while position < len(stream):
        step = rng.randrange(1, 200)
        out.extend(decoder.feed(stream[position:position + step]))
        position += step
    assert out == messages


def test_frame_decoder_bad_magic():
    frame = bytearray(encode_frame(0, Hello(sender=0)))
    frame[0] ^= 0xFF
    with pytest.raises(WireError):
        list(FrameDecoder().feed(bytes(frame)))


def test_frame_decoder_bad_version():
    frame = bytearray(encode_frame(0, Hello(sender=0)))
    assert frame[1] == WIRE_VERSION
    frame[1] = WIRE_VERSION + 1
    with pytest.raises(WireError):
        list(FrameDecoder().feed(bytes(frame)))


def test_frame_decoder_oversized_length():
    header = bytes([WIRE_MAGIC, WIRE_VERSION]) \
        + (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
    with pytest.raises(WireError):
        list(FrameDecoder().feed(header))


def test_frame_decoder_partial_frame_waits():
    frame = encode_frame(3, Hello(sender=3))
    decoder = FrameDecoder()
    assert list(decoder.feed(frame[:FRAME_HEADER_SIZE + 1])) == []
    assert decoder.buffered_bytes == FRAME_HEADER_SIZE + 1
    assert list(decoder.feed(frame[FRAME_HEADER_SIZE + 1:])) \
        == [(3, Hello(sender=3))]


def test_frame_decoder_corrupt_payload():
    frame = bytearray(encode_frame(0, Hello(sender=0)))
    frame[-1] = 0xFE  # smash the last payload byte (role string)
    with pytest.raises(WireError):
        list(FrameDecoder().feed(bytes(frame)))
