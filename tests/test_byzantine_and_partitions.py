"""Tests for the Byzantine behaviour modules and partial-synchrony recovery.

Covers the misbehaving replica implementations directly (silent replica,
equivocating leaders, delayed stragglers) and the deadlock-freeness property
under temporary network partitions: chain growth resumes once the partition
heals (the paper's distinction between deadlock freeness and liveness,
Remark 5.1).
"""

from __future__ import annotations

import pytest

from repro.byzantine.behaviors import (
    DelayedReplica,
    EquivocatingBanyanReplica,
    EquivocatingICCReplica,
    SilentReplica,
    fast_vote_equivocators,
    make_equivocating_banyan,
    make_equivocating_icc,
)
from repro.net.faults import FaultPlan, PartitionPlan
from repro.net.latency import ConstantLatency
from repro.protocols.base import ProtocolParams
from repro.protocols.registry import create_replicas
from repro.runtime.simulator import NetworkConfig, Simulation
from tests.conftest import assert_consistent_chains, assert_no_conflicting_rounds


class TestSilentReplica:
    def test_silent_replica_sends_nothing(self):
        params = ProtocolParams(n=4, f=1, p=1, rank_delay=0.4, payload_size=1_000)
        replicas = create_replicas("banyan", params, overrides={3: SilentReplica})
        sim = Simulation(replicas, NetworkConfig(latency=ConstantLatency(0.05), seed=2))
        sim.run(until=10.0)
        # The silent replica commits nothing but the others keep going.
        assert sim.commits_for(3) == []
        assert len(sim.commits_for(0)) > 5
        assert_no_conflicting_rounds(sim)

    def test_silent_replica_equivalent_to_crash(self):
        params = ProtocolParams(n=4, f=1, p=1, rank_delay=0.4, payload_size=1_000)

        silent = create_replicas("banyan", params, overrides={3: SilentReplica})
        sim_silent = Simulation(silent, NetworkConfig(latency=ConstantLatency(0.05), seed=2))
        sim_silent.run(until=15.0)

        crashed = create_replicas("banyan", params)
        sim_crashed = Simulation(
            crashed,
            NetworkConfig(latency=ConstantLatency(0.05), seed=2,
                          faults=FaultPlan.with_crashed([3])),
        )
        sim_crashed.run(until=15.0)

        assert abs(len(sim_silent.commits_for(0)) - len(sim_crashed.commits_for(0))) <= 2


class TestEquivocators:
    def test_factories_return_protocol_classes(self):
        assert make_equivocating_banyan() is EquivocatingBanyanReplica
        assert make_equivocating_icc() is EquivocatingICCReplica
        assert issubclass(EquivocatingBanyanReplica, object)

    def test_equivocator_sends_two_conflicting_blocks(self):
        """Inspect the raw messages an equivocating leader produces."""
        params = ProtocolParams(n=4, f=1, p=1, rank_delay=0.4, payload_size=100)

        sent = []

        class Recorder(SilentReplica):
            def on_message(self, ctx, sender, message):
                sent.append((sender, message))

        replicas = create_replicas(
            "banyan", params,
            overrides={0: make_equivocating_banyan(), 1: Recorder, 2: Recorder, 3: Recorder},
        )
        sim = Simulation(replicas, NetworkConfig(latency=ConstantLatency(0.05), seed=1))
        # Round 1's leader is replica 1 (a recorder), so nothing happens until
        # round 0 % 4... run long enough for replica 0's leader round: with
        # round-robin, replica 0 leads round 4 — but recorders never advance,
        # so instead check the equivocator's behaviour in round 1 is honest
        # (it is not the leader) and drive its leader round directly.
        equivocator = sim.protocol(0)
        sim.start()
        equivocator.current_round = 4
        equivocator.tree.mark_notarized(equivocator.tree.genesis_id)
        # Force a proposal for a round it leads (round 4 with 4 replicas).
        state = equivocator._round(4)
        state.entered = True
        # Give it a notarized+unlocked parent at round 3.
        from repro.types.blocks import Block, genesis_block

        parent = Block(round=3, proposer=1, rank=0, parent_id=genesis_block().id)
        equivocator.tree.add_block(parent)
        equivocator.tree.mark_notarized(parent.id)
        equivocator.tree.mark_unlocked(parent.id)
        equivocator._propose(sim._contexts[0], 4)
        sim.run(until=1.0)
        proposals = [m for _, m in sent if hasattr(m, "block") and m.block.round == 4]
        block_ids = {m.block.id for m in proposals}
        assert len(block_ids) == 2, "the equivocator must produce two distinct round-4 blocks"

    def test_honest_majority_withstands_equivocation_with_p_equals_f(self):
        params = ProtocolParams(n=9, f=2, p=2, rank_delay=0.4, payload_size=1_000)
        replicas = create_replicas("banyan", params, overrides={1: make_equivocating_banyan()})
        sim = Simulation(replicas, NetworkConfig(latency=ConstantLatency(0.05), seed=5))
        sim.run(until=20.0)
        assert_no_conflicting_rounds(sim)
        honest = [r for r in sim.replica_ids if r != 1]
        assert all(len(sim.commits_for(r)) > 5 for r in honest)


class TestBanyanFastPathUnderAdversaries:
    """The fast path must *degrade* under misbehaviour — never fork.

    The ICC-family tests above exercise the slow path; these plant the same
    adversaries into fast-path (p=1) Banyan configurations and pin the
    dual-mode guarantee: FP-finalization is simply lost in the disturbed
    rounds while the slow machinery keeps the chain growing consistently.
    """

    def test_equivocating_leader_never_fast_finalizes_its_rounds(self):
        params = ProtocolParams(n=7, f=2, p=1, rank_delay=0.4, payload_size=1_000)
        replicas = create_replicas(
            "banyan", params, overrides={1: make_equivocating_banyan()}
        )
        sim = Simulation(replicas, NetworkConfig(latency=ConstantLatency(0.05), seed=3))
        sim.run(until=25.0)
        assert_consistent_chains(sim)
        assert_no_conflicting_rounds(sim)
        honest = [r for r in sim.replica_ids if r != 1]
        # The chain keeps growing through the equivocator's leader rounds.
        assert all(len(sim.commits_for(r)) > 20 for r in honest)
        for replica_id in honest:
            protocol = sim.protocol(replica_id)
            # No round led by the equivocator ever reaches the n - p fast
            # quorum on either of its two blocks: the split fast votes make
            # FP-finalization impossible, at every honest replica.
            for round_k, state in protocol._fast.items():
                if protocol.beacon.leader(round_k) == 1:
                    assert state.fast_finalizable_blocks() == []
            # The quorum engine catches the leader's conflicting fast votes.
            assert fast_vote_equivocators(protocol) == frozenset({1})

    def test_equivocator_led_rounds_still_finalize_eventually(self):
        params = ProtocolParams(n=7, f=2, p=1, rank_delay=0.4, payload_size=1_000)
        replicas = create_replicas(
            "banyan", params, overrides={1: make_equivocating_banyan()}
        )
        sim = Simulation(replicas, NetworkConfig(latency=ConstantLatency(0.05), seed=3))
        sim.run(until=25.0)
        committed_rounds = {record.block.round for record in sim.commits_for(0)}
        led = [round_k for round_k in committed_rounds
               if sim.protocol(0).beacon.leader(round_k) == 1]
        # One of the two equivocation blocks wins per led round — finalized
        # by the surrounding machinery, not by its own fast path.
        assert led, "equivocator-led rounds must still enter the chain"

    def test_stragglers_degrade_fast_path_to_slow_without_fork(self):
        params = ProtocolParams(n=7, f=2, p=1, rank_delay=0.4, payload_size=1_000)

        def run(straggler_ids):
            replicas = create_replicas("banyan", params)
            for replica_id in straggler_ids:
                replicas[replica_id] = DelayedReplica(replicas[replica_id],
                                                      extra_delay=1.0)
            sim = Simulation(replicas,
                             NetworkConfig(latency=ConstantLatency(0.05), seed=2))
            sim.run(until=25.0)
            return sim

        baseline = run(())
        degraded = run((5, 6))
        assert_consistent_chains(degraded)
        assert_no_conflicting_rounds(degraded)
        # p = 1 needs all but one replica prompt: without stragglers every
        # commit is FP-finalized, with two of them the n - 1 fast quorum is
        # unreachable and every commit falls back to SP-finalization.
        assert baseline.protocol(0).fast_finalized_count > 20
        assert baseline.protocol(0).slow_finalized_count == 0
        assert degraded.protocol(0).fast_finalized_count == 0
        assert degraded.protocol(0).slow_finalized_count > 20
        # Degraded, not dead: the slow path keeps committing.
        assert all(len(degraded.commits_for(r)) > 20 for r in degraded.replica_ids)


class TestDelayedReplica:
    def test_outbound_messages_are_delayed(self):
        params = ProtocolParams(n=4, f=1, p=1, rank_delay=0.4, payload_size=1_000)
        replicas = create_replicas("banyan", params)
        wrapped = DelayedReplica(replicas[2], extra_delay=0.2)
        replicas[2] = wrapped
        sim = Simulation(replicas, NetworkConfig(latency=ConstantLatency(0.05), seed=1))
        sim.run(until=5.0)
        # The wrapped replica still participates (receives, commits), just late.
        assert len(sim.commits_for(2)) > 0
        assert wrapped.inner.proposal_times  # it proposed in its leader rounds

    def test_zero_delay_behaves_like_honest(self):
        params = ProtocolParams(n=4, f=1, p=1, rank_delay=0.4, payload_size=1_000)

        plain = create_replicas("banyan", params)
        sim_plain = Simulation(plain, NetworkConfig(latency=ConstantLatency(0.05), seed=1))
        sim_plain.run(until=5.0)

        wrapped = create_replicas("banyan", params)
        wrapped[2] = DelayedReplica(wrapped[2], extra_delay=0.0)
        sim_wrapped = Simulation(wrapped, NetworkConfig(latency=ConstantLatency(0.05), seed=1))
        sim_wrapped.run(until=5.0)

        assert len(sim_plain.commits_for(0)) == len(sim_wrapped.commits_for(0))

    def test_negative_delay_rejected(self):
        params = ProtocolParams(n=4, f=1, p=1)
        replicas = create_replicas("banyan", params)
        with pytest.raises(ValueError):
            DelayedReplica(replicas[0], extra_delay=-0.1)


class TestPartitions:
    """Deadlock freeness: chain growth resumes after a partition heals."""

    def _run_with_partition(self, protocol: str, start: float, end: float):
        params = ProtocolParams(n=4, f=1, p=1, rank_delay=0.4, payload_size=1_000)
        replicas = create_replicas(protocol, params)
        partitions = PartitionPlan.single(start, end, [0, 1], [2, 3])
        network = NetworkConfig(
            latency=ConstantLatency(0.05),
            faults=FaultPlan(partitions=partitions),
            seed=1,
        )
        sim = Simulation(replicas, network)
        sim.run(until=end + 15.0)
        return sim

    @pytest.mark.parametrize("protocol", ["banyan", "icc"])
    def test_no_commits_across_partition_but_recovery_after(self, protocol):
        sim = self._run_with_partition(protocol, start=2.0, end=6.0)
        assert_consistent_chains(sim)
        assert_no_conflicting_rounds(sim)
        commits = sim.commits_for(0)
        assert commits, "the protocol must recover after the partition heals"
        # During a 2-2 split neither side has a quorum of 3, so no block can
        # be finalized inside the partition window.
        during = [r for r in commits if 2.5 < r.commit_time < 6.0]
        assert during == []
        after = [r for r in commits if r.commit_time >= 6.0]
        assert len(after) > 5

    def test_partition_then_catchup_reaches_same_chain(self):
        sim = self._run_with_partition("banyan", start=1.0, end=4.0)
        chains = [[r.block.id for r in sim.commits_for(replica)] for replica in sim.replica_ids]
        shortest = min(len(c) for c in chains)
        assert shortest > 0
        assert all(c[:shortest] == chains[0][:shortest] for c in chains)
