"""Tests for the replica compute layer: models, wiring, metrics, scenario.

The byte-for-byte equivalence of the default :class:`ZeroCompute` with the
pre-compute simulator is pinned by the golden digests in
``tests/test_transport.py``; these tests cover the crypto cost model's
arithmetic, the simulator's CPU-timeline semantics (busy cores defer
deliveries, run()/step() agree), the metrics/trace/serialisation surfaces,
and the network-bound → CPU-bound crossover scenario.
"""

from __future__ import annotations

import math

import pytest

from repro.eval.experiment import ExperimentConfig, run_experiment
from repro.eval.plan import ExperimentSpec
from repro.eval.runner import run_plan
from repro.eval.scenarios import figure_from_plan, plan_crypto_bound
from repro.net.latency import ConstantLatency
from repro.protocols.base import Protocol, ProtocolParams
from repro.protocols.registry import create_replicas
from repro.runtime.compute import (
    CryptoCostCompute,
    CryptoCostTable,
    ZeroCompute,
    available_compute_models,
    build_compute,
)
from repro.runtime.simulator import NetworkConfig, Simulation
from repro.runtime.trace import attach_compute_trace
from repro.types.blocks import Block, genesis_block
from repro.types.certificates import Notarization
from repro.types.messages import BlockProposal, CertificateMessage, VoteMessage
from repro.types.votes import FastVote, NotarizationVote


def _notarization(voters) -> Notarization:
    return Notarization(round=1, block_id=b"b", voters=frozenset(voters))


class TestCostModel:
    def test_registry(self):
        assert available_compute_models() == ["crypto", "zero"]
        assert isinstance(build_compute("zero"), ZeroCompute)
        crypto = build_compute("crypto", scale=3.0)
        assert isinstance(crypto, CryptoCostCompute)
        assert crypto.scale == 3.0

    def test_unknown_model_rejected_with_hint(self):
        with pytest.raises(KeyError, match="crypto"):
            build_compute("gpu")

    def test_instance_adopted_and_reset(self):
        instance = CryptoCostCompute()
        instance.busy_until[0] = 99.0
        assert build_compute(instance) is instance
        assert instance.busy_until == {}

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            CryptoCostCompute(scale=0.0)

    def test_zero_compute_is_trivial_and_free(self):
        model = ZeroCompute()
        assert model.trivial
        assert model.message_cost(0, 1, VoteMessage(votes=(), sender=1)) == 0.0

    def test_vote_message_cost_scales_with_votes(self):
        table = CryptoCostTable()
        model = CryptoCostCompute(table)
        one = VoteMessage(votes=(NotarizationVote(round=1, block_id=b"b", voter=1),),
                          sender=1)
        two = VoteMessage(votes=(NotarizationVote(round=1, block_id=b"b", voter=1),
                                 FastVote(round=1, block_id=b"b", voter=1)),
                          sender=1)
        assert model.message_cost(0, 1, one) == pytest.approx(
            table.hash_s + table.share_verify_s)
        assert model.message_cost(0, 1, two) == pytest.approx(
            table.hash_s + 2 * table.share_verify_s)

    def test_certificate_cost_scales_with_signer_set(self):
        table = CryptoCostTable()
        model = CryptoCostCompute(table)
        small = CertificateMessage(certificate=_notarization(range(3)), sender=1)
        large = CertificateMessage(certificate=_notarization(range(13)), sender=1)
        delta = (model.message_cost(0, 1, large)
                 - model.message_cost(0, 1, small))
        assert delta == pytest.approx(10 * table.aggregate_verify_per_signer_s)

    def test_proposal_cost_includes_sign_and_attachments(self):
        table = CryptoCostTable()
        model = CryptoCostCompute(table)
        block = Block(round=1, proposer=1, rank=0, parent_id=genesis_block().id)
        bare = BlockProposal(block=block)
        with_parent = BlockProposal(block=block,
                                    parent_notarization=_notarization(range(5)))
        assert model.message_cost(0, 1, bare) == pytest.approx(
            table.hash_s + table.share_verify_s + table.sign_s)
        assert model.message_cost(0, 1, with_parent) == pytest.approx(
            model.message_cost(0, 1, bare) + table.aggregate_verify_base_s
            + 5 * table.aggregate_verify_per_signer_s)

    def test_self_delivery_is_free(self):
        model = CryptoCostCompute()
        message = VoteMessage(votes=(NotarizationVote(round=1, block_id=b"b",
                                                      voter=0),), sender=0)
        assert model.message_cost(0, 0, message) == 0.0
        assert model.message_cost(1, 0, message) > 0.0

    def test_scale_multiplies_every_cost(self):
        message = VoteMessage(votes=(NotarizationVote(round=1, block_id=b"b",
                                                      voter=1),), sender=1)
        base = CryptoCostCompute().message_cost(0, 1, message)
        assert CryptoCostCompute(scale=5.0).message_cost(0, 1, message) == (
            pytest.approx(5.0 * base))


class _Sink(Protocol):
    """Replica 0 records when each delivery is handled."""

    name = "sink"

    def __init__(self, replica_id, params):
        super().__init__(replica_id, params)
        self.handled = []

    def on_start(self, ctx):
        if self.replica_id == 1:
            # Two back-to-back broadcasts: their copies arrive together.
            vote = NotarizationVote(round=1, block_id=b"b", voter=1)
            ctx.broadcast(VoteMessage(votes=(vote,), sender=1))
            ctx.broadcast(VoteMessage(votes=(vote,), sender=1))

    def on_message(self, ctx, sender, message):
        self.handled.append(ctx.now())

    def on_timer(self, ctx, timer):
        pass


class TestSimulatorWiring:
    def _sink_simulation(self, compute, scale=1.0):
        params = ProtocolParams(n=2, f=0, p=0)
        protocols = {i: _Sink(i, params) for i in range(2)}
        network = NetworkConfig(latency=ConstantLatency(0.05), compute=compute,
                                compute_scale=scale)
        return Simulation(protocols, network), protocols

    def test_busy_core_defers_second_delivery(self):
        simulation, protocols = self._sink_simulation("crypto")
        simulation.run_until_idle()
        first, second = protocols[0].handled
        cost = simulation.compute.message_cost(
            0, 1, VoteMessage(votes=(NotarizationVote(round=1, block_id=b"b",
                                                      voter=1),), sender=1))
        # Both copies arrive together; the second waits out the first's cost.
        assert second - first == pytest.approx(cost)
        stats = simulation.compute_stats()
        assert stats["deferred_deliveries"] == 1
        assert stats["queue_wait_s"][0] == pytest.approx(cost)
        assert stats["busy_s"][0] == pytest.approx(2 * cost)

    def test_zero_compute_delivers_back_to_back(self):
        simulation, protocols = self._sink_simulation("zero")
        simulation.run_until_idle()
        first, second = protocols[0].handled
        assert first == second  # no CPU serialization between the copies
        assert simulation.compute_stats() == {"compute": "zero"}

    def test_step_and_run_agree_under_crypto_compute(self):
        params = ProtocolParams(n=4, f=1, p=1, rank_delay=0.4, payload_size=1_000)

        def run_with(driver):
            simulation = Simulation(
                create_replicas("banyan", params),
                NetworkConfig(latency=ConstantLatency(0.05), seed=1,
                              compute="crypto", compute_scale=2.0),
            )
            driver(simulation)
            return [(r.block.id, f"{r.commit_time:.9f}", r.finalization_kind)
                    for r in simulation.commits_for(0)]

        def stepper(simulation):
            simulation.start()
            while simulation.now < 6.0 and simulation.step():
                pass

        full = run_with(lambda simulation: simulation.run(until=6.0))
        stepped = run_with(stepper)
        # step() overshoots the horizon by at most its final event.
        assert full == stepped[: len(full)] or full[: len(stepped)] == stepped
        assert full

    def test_crypto_compute_is_deterministic(self):
        params = ProtocolParams(n=4, f=1, p=1, rank_delay=0.4, payload_size=1_000)

        def run_once():
            simulation = Simulation(
                create_replicas("banyan", params),
                NetworkConfig(latency=ConstantLatency(0.05), seed=7,
                              compute="crypto"),
            )
            simulation.run(until=8.0)
            return ([(r.block.id, r.commit_time) for r in simulation.commits_for(0)],
                    simulation.compute_stats())

        assert run_once() == run_once()

    def test_crypto_compute_slows_commits(self):
        params = ProtocolParams(n=4, f=1, p=1, rank_delay=0.4, payload_size=1_000)

        def commits(compute, scale):
            simulation = Simulation(
                create_replicas("banyan", params),
                NetworkConfig(latency=ConstantLatency(0.05), seed=1,
                              compute=compute, compute_scale=scale),
            )
            simulation.run(until=8.0)
            return len(simulation.commits_for(0))

        assert commits("crypto", 10.0) < commits("zero", 1.0)

    def test_compute_trace_records_busy_and_wait(self):
        simulation, _ = self._sink_simulation("crypto")
        log = attach_compute_trace(simulation)
        simulation.run_until_idle()
        busy = log.events(kind="cpu-busy")
        waits = log.events(kind="cpu-wait")
        assert len(busy) == 2 and len(waits) == 1
        assert busy[0].data["message"] == "VoteMessage"
        assert waits[0].data["seconds"] == pytest.approx(busy[0].data["seconds"])

    def test_saturated_run_respects_the_horizon(self):
        # Under CPU saturation the delivery backlog must stay queued past
        # ``until`` — not drain at times beyond the horizon (which would
        # contaminate duration-based metrics and push busy fractions > 1).
        params = ProtocolParams(n=7, f=2, p=1, rank_delay=0.4, payload_size=1_000)
        simulation = Simulation(
            create_replicas("banyan", params),
            NetworkConfig(latency=ConstantLatency(0.05), seed=1,
                          compute="crypto", compute_scale=400.0),
        )
        simulation.run(until=5.0)
        assert simulation.now == 5.0
        for records in simulation.all_commits().values():
            assert all(record.commit_time <= 5.0 for record in records)

    def test_custom_compute_model_only_needs_message_cost(self):
        # The documented extension point: subclass ComputeModel, implement
        # message_cost, pass the instance — the timeline bookkeeping is
        # inherited from the base class.
        from repro.runtime.compute import ComputeModel

        class FlatCompute(ComputeModel):
            name = "flat"

            def message_cost(self, receiver, sender, message):
                return 0.001 if receiver != sender else 0.0

        model = FlatCompute()
        params = ProtocolParams(n=2, f=0, p=0)
        simulation = Simulation(
            {i: _Sink(i, params) for i in range(2)},
            NetworkConfig(latency=ConstantLatency(0.05), compute=model),
        )
        simulation.run_until_idle()
        assert model.messages_charged == 2
        assert model.deferred_deliveries == 1
        assert model.busy_s[0] == pytest.approx(0.002)

    def test_compute_trace_silent_under_zero(self):
        simulation, _ = self._sink_simulation("zero")
        log = attach_compute_trace(simulation)
        simulation.run_until_idle()
        assert len(log) == 0


class TestComputeMetricsAndSerialization:
    def _config(self, compute="zero", scale=1.0):
        return ExperimentConfig(
            protocol="banyan",
            params=ProtocolParams(n=4, f=1, p=1, rank_delay=0.6,
                                  payload_size=10_000),
            duration=6.0, warmup=1.0, compute=compute, compute_scale=scale,
        )

    def test_crypto_run_reports_busy_fractions_and_waits(self):
        result = run_experiment(self._config("crypto"))
        metrics = result.metrics
        assert set(metrics.compute_busy_fractions) == {0, 1, 2, 3}
        assert 0.0 < metrics.max_busy_fraction <= 1.0
        assert metrics.total_compute_queue_wait_s >= 0.0
        row = result.row()
        assert row["busy_frac"] == round(metrics.max_busy_fraction, 3)
        assert "cpu_wait_ms" in row

    def test_zero_run_reports_nothing(self):
        result = run_experiment(self._config("zero"))
        assert result.metrics.compute_busy_fractions == {}
        assert result.metrics.max_busy_fraction == 0.0
        assert "busy_frac" not in result.row()
        # Zero-compute metrics serialise exactly as pre-compute ones did.
        assert "compute_busy_fractions" not in result.metrics.to_dict()

    def test_result_round_trip_with_compute(self):
        from repro.eval.experiment import ExperimentResult

        result = run_experiment(self._config("crypto", scale=2.0))
        rebuilt = ExperimentResult.from_dict(result.to_dict())
        assert rebuilt.row() == result.row()
        assert rebuilt.metrics.compute_busy_fractions == (
            result.metrics.compute_busy_fractions)
        assert rebuilt.config.compute == "crypto"
        assert rebuilt.config.compute_scale == 2.0

    def test_spec_hash_unchanged_by_default_compute(self):
        base = ExperimentSpec(protocol="banyan",
                              params=ProtocolParams(n=4, f=1, p=1))
        explicit = ExperimentSpec(protocol="banyan",
                                  params=ProtocolParams(n=4, f=1, p=1),
                                  compute="zero", compute_scale=1.0)
        assert explicit.content_hash() == base.content_hash()
        assert "compute" not in base.to_dict()
        # A scale the zero model never reads must not change the hash.
        scaled = ExperimentSpec(protocol="banyan",
                                params=ProtocolParams(n=4, f=1, p=1),
                                compute_scale=7.0)
        assert scaled.content_hash() == base.content_hash()

    def test_spec_hash_distinguishes_compute_models(self):
        base = ExperimentSpec(protocol="banyan",
                              params=ProtocolParams(n=4, f=1, p=1))
        crypto = ExperimentSpec(protocol="banyan",
                                params=ProtocolParams(n=4, f=1, p=1),
                                compute="crypto")
        scaled = ExperimentSpec(protocol="banyan",
                                params=ProtocolParams(n=4, f=1, p=1),
                                compute="crypto", compute_scale=2.0)
        assert len({base.content_hash(), crypto.content_hash(),
                    scaled.content_hash()}) == 3

    def test_spec_round_trip_and_to_config(self):
        spec = ExperimentSpec(protocol="banyan",
                              params=ProtocolParams(n=4, f=1, p=1),
                              compute="crypto", compute_scale=3.0)
        assert ExperimentSpec.from_dict(spec.to_dict()).to_dict() == spec.to_dict()
        config = spec.to_config()
        assert (config.compute, config.compute_scale) == ("crypto", 3.0)
        assert ExperimentSpec.from_config(config).to_dict() == spec.to_dict()


class TestCryptoBoundScenario:
    def test_plan_shape(self):
        plan = plan_crypto_bound(replica_counts=(4, 7), seeds=2)
        assert len(plan.specs) == 2 * 2 * 2  # n × series × replications
        assert {spec.compute for spec in plan.specs} == {"zero", "crypto"}
        assert all(spec.axis == {"n": spec.params.n} for spec in plan.specs)

    def test_crossover_monotone_in_n(self):
        plan = plan_crypto_bound(replica_counts=(4, 10, 16), duration=6.0,
                                 warmup=1.0)
        figure = figure_from_plan(plan, run_plan(plan))
        free = {row["n"]: row for row in figure.series["banyan (free compute)"]}
        costed = {row["n"]: row
                  for row in figure.series["banyan (crypto compute)"]}
        busy = [costed[n]["busy_frac"] for n in (4, 10, 16)]
        # CPU load rises monotonically with n (the crossover's x-axis)...
        assert busy == sorted(busy) and busy[0] < busy[-1]
        assert not math.isclose(busy[0], busy[-1])
        # ...while free-compute throughput stays network-bound and flat-ish,
        # the costed series falls further behind at every step.
        gaps = [free[n]["blocks_per_s"] - costed[n]["blocks_per_s"]
                for n in (4, 10, 16)]
        assert gaps == sorted(gaps)
        assert gaps[0] >= 0 and gaps[-1] > gaps[0]
